"""Command-line interface: the reproduction's ``tma_tool``.

Mirrors the artifact's ``tma_tool`` commands::

    python -m repro.tools.cli list
    python -m repro.tools.cli tma --workload qsort --config large-boom
    python -m repro.tools.cli suite --category micro --config rocket
    python -m repro.tools.cli trace --workload mergesort --config rocket \
        --signals icache_miss,fetch_bubbles --window 120
    python -m repro.tools.cli vlsi
    python -m repro.tools.cli perf --workload coremark --events \
        uops_issued,uops_retired --counter-arch distributed
    python -m repro.tools.cli reliability --faults 5 --seed 0

(Installed as the ``repro-tma`` console script.)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..core import (compute_tma, render_breakdown_table, render_result,
                    to_csv, to_json)
from ..cores import CONFIGS_BY_NAME, config_by_name
from ..cores.base import RocketConfig, TIMING_ENGINES
from ..pmu import PerfHarness
from ..pmu.harness import make_core
from ..trace import (boom_tma_bundle, capture_trace, find_first,
                     render_raster, rocket_tma_bundle)
from ..vlsi import ARCHITECTURES, sweep
from ..workloads import build_trace, get_workload, workload_names
from .tma_tool import run_suite


def _add_timing_engine(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timing-engine", default=None,
                        choices=sorted(TIMING_ENGINES),
                        help="timing-engine implementation (default: "
                             "REPRO_TIMING_ENGINE or columnar); the "
                             "engines are bit-identical")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", default="large-boom",
                        choices=sorted(CONFIGS_BY_NAME),
                        help="core configuration (Table IV)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")


def _add_windowing(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--windows", type=int, default=None,
                        help="shard the trace into K windows simulated in "
                             "parallel and stitched (default: REPRO_WINDOWS "
                             "env, else unwindowed); required for 'huge' "
                             "tier workloads")
    parser.add_argument("--warmup", type=int, default=None,
                        help="per-window warmup overlap in instructions "
                             "(default: REPRO_WINDOW_WARMUP env, else the "
                             "engine default; see docs/windowed.md)")
    parser.add_argument("--sampled", action="store_true",
                        help="sample one span per window period and "
                             "extrapolate (results are always labeled "
                             "sampled, with per-slot error bars)")
    parser.add_argument("--progress", action="store_true",
                        help="per-window progress ticks on stderr")


def _sampled_banner(result) -> Optional[str]:
    """The sampled-mode label + error bars for one windowed CoreResult."""
    if not getattr(result, "sampled", False):
        return None
    meta = result.windowed or {}
    lines = [f"SAMPLED run (coverage {meta.get('coverage', 0):.1%}): "
             "totals are extrapolated, never exact"]
    bars = meta.get("error_bars") or {}
    for slot in sorted(bars):
        bar = bars[slot]
        lines.append(
            f"  {slot:<16s} {bar['mean']:.4f} "
            f"[{bar['low']:.4f}, {bar['high']:.4f}] "
            f"(stderr {bar['stderr']:.4f})")
    return "\n".join(lines)


def _cmd_list(args: argparse.Namespace) -> int:
    for name in workload_names(args.category):
        workload = get_workload(name)
        print(f"{name:<20s} [{workload.category}] "
              f"{workload.description}")
    return 0


def _cmd_tma(args: argparse.Namespace) -> int:
    from .tma_tool import run_core

    config = config_by_name(args.config)
    try:
        core_result = run_core(args.workload, config, scale=args.scale,
                               use_cache=not args.no_cache,
                               engine=args.timing_engine,
                               windows=args.windows, warmup=args.warmup,
                               sampled=args.sampled, progress=args.progress)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    banner = _sampled_banner(core_result)
    if banner:
        print(banner)
        print()
    print(render_result(compute_tma(core_result),
                        show_level2=not args.top_only))
    meta = core_result.windowed
    if meta is not None:
        print(f"\nwindowed: windows={meta['windows']} "
              f"warmup={meta['warmup']} sampled={meta['sampled']} "
              f"coverage={meta['coverage']:.1%} "
              f"wall={meta.get('wall_s', 0):.3f}s")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    import time

    from .checkpoint import SweepCheckpoint, grid_signature
    from .tma_tool import SuiteDeadlineExceeded

    config = config_by_name(args.config)
    names = workload_names(args.category)
    if args.category == "huge" and args.windows is None:
        print("the 'huge' tier is only runnable windowed: pass --windows "
              "(optionally --sampled); see docs/windowed.md",
              file=sys.stderr)
        return 2
    # Crash-safe progress: every finished workload is checkpointed, so
    # a killed run (or a lapsed --deadline) resumes with --resume
    # instead of starting over.  The signature ties the checkpoint to
    # this exact grid + code fingerprint; any mismatch discards it.
    # Window parameters fold into both tag and signature, so a windowed
    # suite never resumes from (or poisons) a plain suite's checkpoint.
    window_tag = (f"-w{args.windows}-u{args.warmup}-s{int(args.sampled)}"
                  if args.windows is not None else "")
    checkpoint = SweepCheckpoint(
        tag=(f"suite-{args.category or 'all'}-{args.config}-{args.scale:g}"
             f"{window_tag}"),
        signature=grid_signature(names, [config.name], args.scale,
                                 extra=window_tag))
    if not args.resume:
        checkpoint.clear()
    deadline = (time.time() + args.deadline
                if args.deadline is not None else None)
    if args.sampled:
        print("SAMPLED suite: totals are extrapolated, never exact",
              file=sys.stderr)
    try:
        results = run_suite(names, config, scale=args.scale,
                            use_cache=not args.no_cache,
                            engine=args.timing_engine,
                            checkpoint=checkpoint, deadline=deadline,
                            windows=args.windows, warmup=args.warmup,
                            sampled=args.sampled, progress=args.progress)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except SuiteDeadlineExceeded as exc:
        if exc.results:
            print(render_breakdown_table(
                exc.results,
                title=f"{args.category or 'all'} suite on {config.name} "
                      f"(partial: deadline lapsed)"))
        print(f"deadline lapsed: {len(exc.remaining)} workload(s) "
              f"remaining ({', '.join(exc.remaining)}); "
              "re-run with --resume to finish", file=sys.stderr)
        return 3
    checkpoint.clear()
    suite_title = f"{args.category or 'all'} suite on {config.name}"
    if args.sampled:
        suite_title += " (SAMPLED: extrapolated)"
    print(render_breakdown_table(results, title=suite_title))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(to_json(results))
        print(f"wrote {args.json}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(to_csv(results))
        print(f"wrote {args.csv}")
    return 0


def _render_grid_matrix(batch) -> str:
    """One workload's design-space matrix: a row per grid point."""
    from ..core.report import format_percent
    from ..core.tma import TOP_LEVEL

    header = [f"{'grid point':<28s}"]
    header += [f"{cls.split('_')[0]:>11s}" for cls in TOP_LEVEL]
    header.append(f"{'IPC':>8s}{'cycles':>12s}")
    title = f"{batch.workload} (scale {batch.scale:g})"
    if any(getattr(result, "sampled", False) for result in batch.results):
        title += "  [SAMPLED: extrapolated]"
    lines = [title, "".join(header)]
    for point, result, tma in zip(batch.points, batch.results, batch.tma):
        row = [f"{point.key:<28.28s}"]
        row += [f"{format_percent(tma.fraction(cls)):>11s}"
                for cls in TOP_LEVEL]
        row.append(f"{tma.ipc:8.3f}{result.cycles:>12d}")
        lines.append("".join(row))
    stats = batch.stats
    shared = (f"mode={stats.mode} workers={stats.workers} "
              f"executed={stats.executed} cache_hits={stats.cache_hits} "
              f"restored={stats.restored} trace_fetches={stats.trace_fetches} "
              f"tables_shared={stats.tables_shared} "
              f"folds_shared={stats.fold_caches_shared} "
              f"wall={stats.wall_s:.3f}s")
    if stats.fallback_reason:
        shared += f" fallback=[{stats.fallback_reason}]"
    lines.append(shared)
    return "\n".join(lines)


def _grid_json_payload(points, batches, scale: float) -> dict:
    from dataclasses import asdict

    from ..core.tma import TOP_LEVEL

    workloads = {}
    degraded = []
    def point_payload(point, result, tma) -> dict:
        payload = {
            "config": point.config.name,
            "cycles": result.cycles,
            "instret": result.instret,
            "ipc": tma.ipc,
            "tma": {cls: tma.fraction(cls) for cls in TOP_LEVEL},
        }
        if getattr(result, "windowed", None) is not None:
            # Windowed runs surface the plan, per-window wall times,
            # and (when sampled) the error bars — and always the
            # sampled flag, so automation can never mistake an
            # extrapolation for an exact run.
            payload["sampled"] = result.sampled
            payload["windowed"] = result.windowed
        return payload

    for batch in batches:
        workloads[batch.workload] = {
            "stats": asdict(batch.stats),
            "points": {
                point.key: point_payload(point, result, tma)
                for point, result, tma in zip(batch.points, batch.results,
                                              batch.tma)
            },
        }
        if batch.stats.fallback_reason:
            degraded.append({"workload": batch.workload,
                             "mode": batch.stats.mode,
                             "fallback_reason": batch.stats.fallback_reason})
    # Automation watching a sweep needs the pool-fallback story at the
    # top level, not buried per-workload: `degraded` lists every batch
    # that fell back to inline execution and why.
    return {"scale": scale, "grid": [p.key for p in points],
            "workloads": workloads, "degraded": degraded}


def _cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from ..cores.batch import DEFAULT_GRID, canonical_grid_key, parse_grid
    from .checkpoint import SweepCheckpoint, grid_signature
    from .tma_tool import SuiteDeadlineExceeded, run_grid

    try:
        points = parse_grid(args.grid or DEFAULT_GRID, vary=args.vary or ())
    except (KeyError, ValueError) as exc:
        print(f"bad grid spec: {exc}", file=sys.stderr)
        return 2
    if args.workloads:
        names = [w.strip() for w in args.workloads.split(",") if w.strip()]
        known = set(workload_names()) | set(workload_names("huge"))
        unknown = [name for name in names if name not in known]
        if unknown:
            print(f"unknown workload(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    else:
        names = workload_names(args.category)
    huge = set(workload_names("huge"))
    if any(name in huge for name in names) and args.windows is None:
        print("'huge' tier workloads are only runnable windowed: pass "
              "--windows (optionally --sampled); see docs/windowed.md",
              file=sys.stderr)
        return 2
    # One checkpoint spans the whole (workloads x points) sweep; the
    # signature folds the canonical grid key, so a checkpoint from a
    # different grid (or an edited simulator) is discarded, and the
    # deterministic tag lets --resume find it again.  Window parameters
    # fold in too: a windowed sweep and a plain sweep of the same grid
    # are different experiments and must never share progress.
    window_tag = (f"w{args.windows}-u{args.warmup}-s{int(args.sampled)}"
                  if args.windows is not None else "")
    signature = grid_signature(
        names, [point.key for point in points], args.scale,
        extra=canonical_grid_key("+".join(sorted(names)), points, args.scale)
        + window_tag)
    checkpoint = SweepCheckpoint(tag=f"sweep-{signature[:12]}",
                                 signature=signature)
    if not args.resume:
        checkpoint.clear()
    deadline = (time.time() + args.deadline
                if args.deadline is not None else None)
    if args.sampled:
        print("SAMPLED sweep: totals are extrapolated, never exact",
              file=sys.stderr)
    try:
        batches = run_grid(names, points, scale=args.scale,
                           use_cache=not args.no_cache,
                           engine=args.timing_engine,
                           workers=args.workers,
                           checkpoint=checkpoint, deadline=deadline,
                           windows=args.windows, warmup=args.warmup,
                           sampled=args.sampled, progress=args.progress)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except SuiteDeadlineExceeded as exc:
        for batch in exc.results:
            print(_render_grid_matrix(batch))
            print()
        if args.json:
            # Write what finished so automation sees the partial matrix
            # (and any pool fallbacks) instead of an absent file.
            payload = _grid_json_payload(points, exc.results, args.scale)
            payload["partial"] = True
            payload["remaining"] = list(exc.remaining)
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            print(f"wrote {args.json} (partial)")
        print(f"deadline lapsed: {len(exc.remaining)} workload(s) "
              f"remaining ({', '.join(exc.remaining)}); "
              "re-run with --resume to finish", file=sys.stderr)
        return 3
    checkpoint.clear()
    for batch in batches:
        print(_render_grid_matrix(batch))
        print()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(_grid_json_payload(points, batches, args.scale),
                      handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _render_multicore(payload: dict) -> str:
    """Human-readable scenario report from a multicore payload."""
    from ..core.report import format_percent

    l2 = (f"{payload['l2_kib']}KiB" if payload.get("l2_kib")
          else "512KiB")
    bus = "shared" if payload.get("shared_bus") else "private"
    lines = [
        f"scenario {payload['scenario']}  scale {payload['scale']:g}  "
        f"cores {len(payload['cores'])}  bus {bus}  "
        f"arbitration {payload['arbitration']}  L2 {l2}",
        f"lockstep cycles {payload['cycles']}  "
        f"wall {payload['wall_s']:.3f}s"
        + ("  (cached)" if payload.get("from_cache") else ""),
    ]
    for core in payload["cores"]:
        lines.append("")
        head = (f"core {core['index']}: {core['workload']} @ "
                f"{core['config']}")
        if core.get("idle"):
            lines.append(f"{head}  [idle]")
            continue
        lines.append(head)
        lines.append(f"  cycles {core['cycles']}  "
                     f"instret {core['instret']}  "
                     f"IPC {core['ipc']:.3f}  "
                     f"dominant {core['tma']['dominant']}")
        level1 = core["tma"]["level1"]
        lines.append("  TMA  " + "  ".join(
            f"{cls} {format_percent(frac)}"
            for cls, frac in sorted(level1.items())))
        attribution = core["attribution"]
        lines.append(
            f"  mem-bound {format_percent(attribution['mem_bound'])} = "
            f"self {format_percent(attribution['self'])} + "
            f"neighbor {format_percent(attribution['neighbor_induced'])}")
        uncore = core["uncore"]
        lines.append(
            f"  uncore  L2 {uncore['accesses']} accesses, "
            f"{uncore['misses']} misses "
            f"(self {uncore['self_misses']}, "
            f"neighbor-induced {uncore['neighbor_induced_misses']})  "
            f"bus wait self {uncore['bus_wait_self']} / "
            f"neighbor {uncore['bus_wait_neighbor']}  "
            f"bandwidth {format_percent(uncore['bandwidth_share'])}")
    return "\n".join(lines)


def _cmd_multicore(args: argparse.Namespace) -> int:
    from ..multicore import (
        SCENARIOS,
        MulticoreError,
        run_scenario_payload,
        scenario_names,
    )

    if args.list:
        for name in scenario_names():
            scenario = SCENARIOS[name]
            mix = ", ".join(f"{slot.workload}@{slot.config}"
                            for slot in scenario.slots)
            print(f"{name:<16s}{mix}")
            print(f"{'':<16s}{scenario.description}")
        return 0
    if not args.scenario:
        print("--scenario is required (or --list)", file=sys.stderr)
        return 2
    try:
        payload = run_scenario_payload(
            args.scenario, cores=args.cores, scale=args.scale,
            shared_bus=False if args.no_shared_bus else None,
            arbitration=args.arbitration, engine=args.timing_engine,
            use_cache=not args.no_cache)
    except KeyError as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"bad scenario spec: {exc}", file=sys.stderr)
        return 2
    except MulticoreError as exc:
        print(f"multicore run failed: {exc}", file=sys.stderr)
        return 1
    print(_render_multicore(payload))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _cmd_mix(args: argparse.Namespace) -> int:
    trace = build_trace(args.workload, scale=args.scale)
    histogram = trace.class_histogram()
    total = len(trace)
    print(f"instruction mix: {args.workload} "
          f"({total} dynamic instructions)")
    for cls, count in sorted(histogram.items(),
                             key=lambda kv: -kv[1]):
        print(f"  {cls.value:<10s}{count:>8d}  {100 * count / total:6.2f}%")
    summary = trace.mispredictable_summary()
    print(f"  branches: {summary['branches']} "
          f"({summary['taken']} taken)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = config_by_name(args.config)
    core = make_core(config)
    if isinstance(config, RocketConfig):
        bundle = rocket_tma_bundle()
    else:
        bundle = boom_tma_bundle(config.decode_width, config.issue_width)
    trace = build_trace(args.workload, scale=args.scale)
    tracer = capture_trace(core, trace, bundle)
    signals = {f.name: tracer.signal(f.name) for f in bundle.fields}
    names = (args.signals.split(",") if args.signals
             else [f.name for f in bundle.fields])
    for name in names:
        if name not in bundle:
            print(f"unknown signal {name!r}; bundle has "
                  f"{[f.name for f in bundle.fields]}", file=sys.stderr)
            return 1
    start = args.start
    if start < 0:
        anchor = find_first(signals, names[0])
        start = max(0, (anchor or 0) - 5)
    print(render_raster(signals, names, start, start + args.window))
    return 0


def _cmd_vlsi(args: argparse.Namespace) -> int:
    grid = sweep()
    print(f"{'config':<14s}{'arch':<13s}{'power%':>8s}{'area%':>8s}"
          f"{'wire%':>8s}{'csr ns':>8s}{'norm':>7s}")
    for name, per_arch in grid.items():
        base = per_arch["baseline"]
        for arch in ARCHITECTURES:
            result = per_arch[arch]
            print(f"{name:<14s}{arch:<13s}"
                  f"{100 * result.power_overhead:8.2f}"
                  f"{100 * result.area_overhead:8.2f}"
                  f"{100 * result.wirelength_overhead:8.2f}"
                  f"{result.longest_csr_path_ns:8.3f}"
                  f"{result.normalized_csr_path(base):7.3f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    out_dir = Path(args.artifacts)
    if not out_dir.is_dir():
        print(f"no artifacts at {out_dir}; run "
              "`pytest benchmarks/ --benchmark-only` first",
              file=sys.stderr)
        return 1
    sections = sorted(out_dir.glob("*.txt"))
    if not sections:
        print(f"no .txt artifacts in {out_dir}", file=sys.stderr)
        return 1
    lines = ["# Reproduction report", "",
             "Collated from the benchmark harness's rendered artifacts "
             f"({len(sections)} experiments).", ""]
    for section in sections:
        lines.append(f"## {section.stem}")
        lines.append("")
        lines.append("```")
        lines.append(section.read_text(encoding="utf-8").rstrip())
        lines.append("```")
        lines.append("")
    report = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.output} ({len(sections)} sections)")
    else:
        print(report)
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    config = config_by_name(args.config)
    harness = PerfHarness(core=config.core,
                          increment_mode=args.counter_arch,
                          mode=args.mode,
                          timing_engine=args.timing_engine)
    events = args.events.split(",") if args.events else None
    measurement = harness.measure(args.workload, config,
                                  event_names=events, scale=args.scale)
    print(f"workload={measurement.workload} config={config.name} "
          f"mode={args.mode} arch={args.counter_arch} "
          f"passes={measurement.passes}")
    print(f"cycles={measurement.cycles} instret={measurement.instret} "
          f"IPC={measurement.ipc:.3f}")
    for name, value in sorted(measurement.events.items()):
        print(f"  {name:<24s}{value}")
    if args.show_tma:
        print()
        print(render_result(compute_tma(measurement)))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from . import bench

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            payload = bench.run_benchmarks(
                quick=args.quick, workers=args.workers,
                inject_slowdown=args.inject_slowdown)
        finally:
            profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        print(f"--- top {args.profile_top} cumulative hotspots ---")
        stats.print_stats(args.profile_top)
        if args.profile_output:
            with open(args.profile_output, "w", encoding="utf-8") as handle:
                pstats.Stats(profiler, stream=handle) \
                    .sort_stats("cumulative") \
                    .print_stats(args.profile_top)
            print(f"wrote {args.profile_output}")
    else:
        payload = bench.run_benchmarks(
            quick=args.quick, workers=args.workers,
            inject_slowdown=args.inject_slowdown)
    print(bench.render_payload(payload))
    bench.write_payload(payload, args.output)
    print(f"wrote {args.output}")

    baseline_path = args.baseline
    if baseline_path == "auto":
        baseline_path = bench.find_baseline(args.output)
    if not baseline_path or baseline_path == "none":
        print("no baseline BENCH_*.json; gate skipped")
        return 0
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    problems = bench.compare_benchmarks(payload, baseline,
                                        threshold=args.threshold,
                                        timing=not args.profile)
    if problems:
        print(f"REGRESSION vs {baseline_path}:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.profile:
        print(f"gate vs {baseline_path}: identity checks passed; "
              "timing ratios skipped (profiler overhead distorts them)")
    else:
        print(f"gate passed vs {baseline_path} "
              f"(threshold {args.threshold:.0%})")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from . import cache

    if args.action == "stats":
        print(cache.usage().render())
        return 0
    # prune: explicit flags win; otherwise the env-var limits apply.
    max_bytes = args.max_bytes
    max_entries = args.max_entries
    if max_bytes is None and max_entries is None:
        max_bytes = cache.cache_limit_bytes()
        max_entries = cache.cache_limit_entries()
    if max_bytes is None and max_entries is None:
        print("nothing to prune: pass --max-bytes/--max-entries or set "
              "REPRO_CACHE_LIMIT_BYTES/REPRO_CACHE_LIMIT_ENTRIES",
              file=sys.stderr)
        return 1
    evicted = cache.prune(max_bytes=max_bytes, max_entries=max_entries)
    print(f"evicted {len(evicted)} entries")
    print(cache.usage().render())
    return 0


def _serve_until_signal(server, on_stop) -> int:
    """Run an HTTP server until SIGINT/SIGTERM, then shut down cleanly.

    Signal handlers must stay trivial: drain() takes locks and joins
    threads, neither of which is async-signal-safe to run inside a
    handler (a SIGTERM landing mid-lock would deadlock the handler
    against the interrupted frame).  The handler only sets an event;
    the main thread performs the graceful drain + server shutdown.
    """
    import signal
    import threading

    stop = threading.Event()

    def _request_shutdown(signum, frame):  # noqa: ARG001 - signal API
        print(f"\nsignal {signum}: shutting down...", file=sys.stderr)
        stop.set()

    signal.signal(signal.SIGINT, _request_shutdown)
    signal.signal(signal.SIGTERM, _request_shutdown)

    # serve_forever blocks; run it off-thread so the main thread is
    # free to wait for the stop event and run the shutdown sequence.
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    while not stop.is_set() and thread.is_alive():
        stop.wait(timeout=0.5)
    on_stop()
    server.shutdown()
    thread.join(timeout=5.0)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..service import TMAService, make_server

    kwargs = dict(workers=args.workers,
                  queue_capacity=args.queue_size,
                  executor=args.executor,
                  record_retention=args.record_retention,
                  timing_engine=args.timing_engine)
    if args.shard_id:
        from ..service.shard import make_shard_service

        service = make_shard_service(args.shard_id, **kwargs)
    else:
        service = TMAService(**kwargs)
    service.start(resume=not args.no_resume)
    server = make_server(service, host=args.host, port=args.port,
                         verbose=args.verbose)
    host, port = server.server_address[:2]
    shard_note = f", shard={args.shard_id}" if args.shard_id else ""
    print(f"repro-tma service on http://{host}:{port} "
          f"(workers={args.workers}, executor={args.executor}, "
          f"queue={args.queue_size}{shard_note})", flush=True)
    print("POST /jobs · GET /jobs/<id> · GET /jobs/<id>/events · "
          "GET /metrics · GET /healthz · POST /admin/drain", flush=True)

    def _drain() -> None:
        report = service.drain()
        print(f"drained: {report}", file=sys.stderr)

    return _serve_until_signal(server, _drain)


def _cmd_gateway(args: argparse.Namespace) -> int:
    import os

    from ..service.gateway import Gateway, make_gateway_server
    from ..service.shard import SHARDS_ENV

    shards = args.shards or os.environ.get(SHARDS_ENV, "")
    if not shards:
        print(f"no shards: pass --shards or set {SHARDS_ENV}="
              "\"s1=http://host:port,...\"", file=sys.stderr)
        return 2
    gateway = Gateway(shards)
    server = make_gateway_server(gateway, host=args.host, port=args.port,
                                 verbose=args.verbose)
    host, port = server.server_address[:2]
    members = ", ".join(f"{shard_id}={url}"
                        for shard_id, url in sorted(gateway.urls.items()))
    print(f"repro-tma gateway on http://{host}:{port} "
          f"routing to [{members}]", flush=True)
    print("POST /jobs|/multicore|/grids · GET /jobs/<id>[/events] · "
          "GET /grids/<id> · GET /metrics · GET /healthz · "
          "POST /admin/{join,leave,evict,drain}", flush=True)
    return _serve_until_signal(server, lambda: None)


def _cmd_submit(args: argparse.Namespace) -> int:
    import time

    from ..service.client import JobRejected, ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    workloads = args.workload.split(",")
    # One absolute wall-clock cutoff shared by every wait below, so a
    # --deadline submission and the client watching it run on the same
    # clock (the jobs themselves carry deadline_seconds server-side).
    wait_deadline = (time.time() + args.deadline
                     if args.deadline is not None else None)
    fields = {"config": args.config, "scale": args.scale,
              "client": args.client, "priority": args.priority,
              "use_cache": not args.no_cache}
    if args.deadline is not None:
        fields["deadline_seconds"] = args.deadline
    if args.windows is not None:
        fields["windows"] = args.windows
        if args.warmup is not None:
            fields["warmup"] = args.warmup
        if args.sampled:
            fields["sampled"] = True
    receipts = []
    try:
        for workload in workloads:
            receipt = client.submit(workload.strip(), retries=args.retries,
                                    **fields)
            flag = " (deduped)" if receipt.get("deduped") else ""
            print(f"accepted {receipt['id']}{flag}")
            receipts.append(receipt)
    except JobRejected as rejected:
        print(f"rejected: retry after {rejected.retry_after:.2f}s",
              file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    if args.no_wait:
        return 0
    if args.stream:
        failed = 0
        for receipt in receipts:
            try:
                for event in client.stream(receipt["id"]):
                    name = event.get("event")
                    data = event.get("data", {})
                    if name == "progress":
                        print(f"{receipt['id']} {data.get('message')}",
                              file=sys.stderr)
                    else:
                        print(f"{receipt['id']} {name}"
                              + (f" [{data.get('state')}]"
                                 if name in ("failed", "rejected") else ""))
                    if (name in ("failed", "rejected", "requeued",
                                 "quarantined")):
                        failed += 1
            except ServiceError as exc:
                print(f"stream failed: {exc}", file=sys.stderr)
                failed += 1
        return 1 if failed else 0
    failed = 0
    for receipt in receipts:
        record = client.wait(receipt["id"], timeout=args.timeout,
                             deadline=wait_deadline)
        result = record.get("result") or {}
        if record["state"] == "done":
            tma = result.get("tma", {})
            windowed = result.get("windowed") or {}
            if windowed:
                tma = windowed.get("tma", tma)
            label = " SAMPLED" if result.get("sampled") else ""
            print(f"{record['id']} done{label} "
                  f"workload={record['job']['workload']} "
                  f"ipc={result.get('ipc', windowed.get('ipc'))} "
                  f"dominant={tma.get('dominant')} "
                  f"from_cache={result.get('from_cache')} "
                  f"latency={record.get('latency_seconds')}s")
        else:
            failed += 1
            print(f"{record['id']} {record['state']}: "
                  f"{record.get('error')}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from ..chaos.campaign import campaign_plan, run_campaign

    plan = campaign_plan(args.seed)
    overrides = {}
    for name in ("worker_kill_rate", "disk_fault_rate",
                 "client_fault_rate", "sched_stall_rate"):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    if overrides:
        from dataclasses import replace

        plan = replace(plan, **overrides)
    report = run_campaign(seed=args.seed, plan=plan,
                          workers=args.workers,
                          skip_service=args.skip_service)
    print(report.render())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
        print(f"wrote {args.report}")
    return 0 if report.passed else 1


def _cmd_reliability(args: argparse.Namespace) -> int:
    from ..reliability import run_campaign

    config = config_by_name(args.config)
    report = run_campaign(seed=args.seed, faults=args.faults,
                          workload=args.workload, config=config,
                          scale=args.scale, max_cycles=args.max_cycles)
    print(report.render())
    return 0 if report.passed else 1


def bench_default_output() -> str:
    """The bench snapshot filename for this PR (see ``tools.bench``)."""
    from .bench import DEFAULT_OUTPUT

    return DEFAULT_OUTPUT


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tma_tool", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered workloads")
    p_list.add_argument("--category", default=None,
                        choices=["micro", "spec", "case-study", "huge"])
    p_list.set_defaults(func=_cmd_list)

    p_tma = sub.add_parser("tma", help="TMA report for one workload")
    p_tma.add_argument("--workload", required=True)
    p_tma.add_argument("--top-only", action="store_true")
    _add_common(p_tma)
    _add_timing_engine(p_tma)
    _add_windowing(p_tma)
    p_tma.set_defaults(func=_cmd_tma)

    p_suite = sub.add_parser("suite", help="TMA table for a suite")
    p_suite.add_argument("--category", default="micro",
                         choices=["micro", "spec", "case-study", "huge"])
    p_suite.add_argument("--json", default=None,
                         help="also write the results as JSON")
    p_suite.add_argument("--csv", default=None,
                         help="also write the results as CSV")
    p_suite.add_argument("--resume", action="store_true",
                         help="resume from the suite checkpoint left by "
                              "a killed or deadline-lapsed run")
    p_suite.add_argument("--deadline", type=float, default=None,
                         help="wall-clock budget in seconds; progress is "
                              "checkpointed, exit code 3 when it lapses")
    _add_common(p_suite)
    _add_timing_engine(p_suite)
    _add_windowing(p_suite)
    p_suite.set_defaults(func=_cmd_suite)

    p_sweep = sub.add_parser(
        "sweep",
        help="batched design-space sweep: one trace pass, N configs")
    p_sweep.add_argument(
        "--grid", default=None,
        help="comma-separated config names or canonical grid point keys "
             "(default: the paper's rocket,small-boom,medium-boom,"
             "large-boom grid)")
    p_sweep.add_argument(
        "--vary", action="append", default=None, metavar="AXIS=V1,V2",
        help="variant axis crossed over the grid (repeatable); axes: "
             "l1d=<KiB>, bp=<tage|gshare|bimodal>, fetch=<width>")
    p_sweep.add_argument("--workloads", default=None,
                         help="comma-separated workload names "
                              "(default: --category)")
    p_sweep.add_argument("--category", default="micro",
                         choices=["micro", "spec", "case-study", "huge"])
    p_sweep.add_argument("--scale", type=float, default=1.0,
                         help="workload scale factor")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="bypass the on-disk result cache")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="process fan-out across grid points "
                              "(default: core count; 1 = inline "
                              "shared-trace path)")
    p_sweep.add_argument("--json", default=None,
                         help="also write the result matrix as JSON")
    p_sweep.add_argument("--resume", action="store_true",
                         help="resume from the sweep checkpoint left by "
                              "a killed or deadline-lapsed run")
    p_sweep.add_argument("--deadline", type=float, default=None,
                         help="wall-clock budget in seconds; progress is "
                              "checkpointed, exit code 3 when it lapses")
    _add_timing_engine(p_sweep)
    _add_windowing(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_mc = sub.add_parser(
        "multicore",
        help="co-located cores over a shared uncore, with "
             "self-vs-neighbor Memory-Bound attribution")
    p_mc.add_argument("--scenario", default=None,
                      help="named scenario (see --list)")
    p_mc.add_argument("--list", action="store_true",
                      help="list the scenario registry and exit")
    p_mc.add_argument("--cores", type=int, default=None,
                      help="trim/pad the mix to N cores "
                           "(pads with idle slots)")
    p_mc.add_argument("--scale", type=float, default=None,
                      help="workload scale override")
    p_mc.add_argument("--arbitration", default=None,
                      choices=["round-robin", "fcfs"],
                      help="uncore bus arbitration override")
    p_mc.add_argument("--no-shared-bus", action="store_true",
                      help="give each core a private DRAM bus "
                           "(isolates L2 capacity contention)")
    p_mc.add_argument("--no-cache", action="store_true",
                      help="bypass the on-disk result cache")
    p_mc.add_argument("--json", default=None,
                      help="also write the scenario payload as JSON")
    _add_timing_engine(p_mc)
    p_mc.set_defaults(func=_cmd_multicore)

    p_mix = sub.add_parser("mix", help="dynamic instruction mix")
    p_mix.add_argument("--workload", required=True)
    p_mix.add_argument("--scale", type=float, default=1.0)
    p_mix.set_defaults(func=_cmd_mix)

    p_trace = sub.add_parser("trace", help="render a trace raster")
    p_trace.add_argument("--workload", required=True)
    p_trace.add_argument("--signals", default=None,
                         help="comma-separated signal names")
    p_trace.add_argument("--start", type=int, default=-1,
                         help="first cycle (-1: anchor at first event)")
    p_trace.add_argument("--window", type=int, default=80)
    _add_common(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_vlsi = sub.add_parser("vlsi", help="Fig. 9 overhead sweep")
    p_vlsi.set_defaults(func=_cmd_vlsi)

    p_report = sub.add_parser(
        "report", help="collate benchmark artifacts into one markdown")
    p_report.add_argument("--artifacts", default="benchmarks/out",
                          help="directory of rendered artifacts")
    p_report.add_argument("--output", default=None,
                          help="write to a file instead of stdout")
    p_report.set_defaults(func=_cmd_report)

    p_perf = sub.add_parser("perf", help="measure through the PMU stack")
    p_perf.add_argument("--workload", required=True)
    p_perf.add_argument("--events", default=None,
                        help="comma-separated event names")
    p_perf.add_argument("--counter-arch", default="adders",
                        choices=["classic", "adders", "distributed"])
    p_perf.add_argument("--mode", default="baremetal",
                        choices=["baremetal", "linux"])
    p_perf.add_argument("--show-tma", action="store_true")
    _add_common(p_perf)
    _add_timing_engine(p_perf)
    p_perf.set_defaults(func=_cmd_perf)

    p_bench = sub.add_parser(
        "bench",
        help="tier-2 benchmark set + BENCH_*.json regression gate")
    p_bench.add_argument("--quick", action="store_true",
                         help="CI-sized subset of the tier-2 set")
    p_bench.add_argument("--workers", type=int, default=None,
                         help="sweep workers (default min(4, cpus))")
    p_bench.add_argument("--threshold", type=float, default=0.20,
                         help="allowed fractional regression on gated "
                              "ratio metrics")
    p_bench.add_argument("--output", default=bench_default_output(),
                         help="snapshot to write")
    p_bench.add_argument("--baseline", default="auto",
                         help="baseline BENCH_*.json ('auto' picks the "
                              "newest committed one, 'none' skips)")
    p_bench.add_argument("--inject-slowdown", type=float, default=0.0,
                         help="artificial per-run slowdown fraction "
                              "(gate self-test)")
    p_bench.add_argument("--profile", action="store_true",
                         help="wrap the run in cProfile and print the "
                              "top cumulative hotspots")
    p_bench.add_argument("--profile-top", type=int, default=25,
                         help="hotspot rows to print with --profile")
    p_bench.add_argument("--profile-output", default="BENCH_PROFILE.txt",
                         help="also write the profile table here "
                              "('' to skip)")
    p_bench.set_defaults(func=_cmd_bench)

    p_cache = sub.add_parser(
        "cache", help="result-cache size report and LRU pruning")
    p_cache.add_argument("action", choices=["stats", "prune"])
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         help="prune until the store is under this many "
                              "bytes (default: REPRO_CACHE_LIMIT_BYTES)")
    p_cache.add_argument("--max-entries", type=int, default=None,
                         help="prune until at most this many entries "
                              "(default: REPRO_CACHE_LIMIT_ENTRIES)")
    p_cache.set_defaults(func=_cmd_cache)

    p_serve = sub.add_parser(
        "serve", help="run the queue-driven TMA analysis service")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker-pool size")
    p_serve.add_argument("--queue-size", type=int, default=256,
                         help="admission-queue bound (backpressure above)")
    p_serve.add_argument("--executor", default="process",
                         choices=["process", "thread", "inline", "shard"],
                         help="worker execution style (shard: forward "
                              "jobs to the REPRO_SHARDS cluster)")
    p_serve.add_argument("--shard-id", default=None,
                         help="serve as one member of a shard cluster: "
                              "sets the shard identity reported by "
                              "/healthz and namespaces the drain-"
                              "persistence file")
    p_serve.add_argument("--record-retention", type=int, default=4096,
                         help="finished job records kept queryable "
                              "before the oldest are evicted")
    p_serve.add_argument("--no-resume", action="store_true",
                         help="skip resubmitting drain-persisted jobs")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")
    _add_timing_engine(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit job(s) to a running service")
    p_submit.add_argument("--url", default="http://127.0.0.1:8321")
    p_submit.add_argument("--workload", required=True,
                          help="workload name (comma-separate for several)")
    p_submit.add_argument("--client", default="cli",
                          help="client id for fair-share accounting")
    p_submit.add_argument("--priority", type=int, default=1,
                          help="0 (most urgent) .. 9")
    p_submit.add_argument("--retries", type=int, default=5,
                          help="retry-after-429 attempts per job")
    p_submit.add_argument("--timeout", type=float, default=120.0,
                          help="per-request / per-wait timeout (seconds)")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="submit and exit without polling results")
    p_submit.add_argument("--deadline", type=float, default=None,
                          help="per-job execution budget in seconds, "
                               "enforced by the service's workers and "
                               "shared by the client-side wait")
    p_submit.add_argument("--stream", action="store_true",
                          help="follow each job's SSE lifecycle stream "
                               "instead of polling")
    _add_common(p_submit)
    _add_windowing(p_submit)
    p_submit.set_defaults(func=_cmd_submit)

    p_gateway = sub.add_parser(
        "gateway",
        help="run the stateless multi-shard routing gateway")
    p_gateway.add_argument("--host", default="127.0.0.1")
    p_gateway.add_argument("--port", type=int, default=8320,
                           help="TCP port (0 = ephemeral)")
    p_gateway.add_argument("--shards", default=None,
                           help="cluster spec "
                                "\"s1=http://h:p,s2=http://h:p\" "
                                "(default: REPRO_SHARDS)")
    p_gateway.add_argument("--verbose", action="store_true",
                           help="log every HTTP request to stderr")
    p_gateway.set_defaults(func=_cmd_gateway)

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded chaos campaign: inject faults, verify invariants")
    p_chaos.add_argument("--seed", type=int, default=1234,
                         help="chaos seed; the full fault schedule and "
                              "the report are functions of it")
    p_chaos.add_argument("--workers", type=int, default=2,
                         help="sweep-phase pool workers")
    p_chaos.add_argument("--worker-kill-rate", type=float, default=None,
                         help="override the plan's worker-kill rate")
    p_chaos.add_argument("--disk-fault-rate", type=float, default=None,
                         help="override the plan's disk-fault rate")
    p_chaos.add_argument("--client-fault-rate", type=float, default=None,
                         help="override the plan's client-fault rate")
    p_chaos.add_argument("--sched-stall-rate", type=float, default=None,
                         help="override the plan's scheduler-stall rate")
    p_chaos.add_argument("--skip-service", action="store_true",
                         help="run only the sweep phases")
    p_chaos.add_argument("--report", default=None,
                         help="also write the JSON report here")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_rel = sub.add_parser(
        "reliability",
        help="fault-injection campaign + TMA invariant audit")
    p_rel.add_argument("--faults", type=int, default=5,
                       help="number of faults to inject (>=5 covers "
                            "every fault class)")
    p_rel.add_argument("--seed", type=int, default=0,
                       help="campaign seed (faults are deterministic)")
    p_rel.add_argument("--workload", default="median")
    p_rel.add_argument("--config", default="large-boom",
                       choices=sorted(CONFIGS_BY_NAME))
    p_rel.add_argument("--scale", type=float, default=0.3)
    p_rel.add_argument("--max-cycles", type=int, default=200_000,
                       help="per-run watchdog budget (cycles)")
    p_rel.set_defaults(func=_cmd_reliability)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
