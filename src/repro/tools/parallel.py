"""Parallel sweep engine: the (workload x config) grid across processes.

The paper's evaluation is a grid — Rocket and BOOM configurations
crossed with SPEC proxies and microbenchmarks — and the cycle-level
simulation of each pair is independent of every other pair.
:class:`ParallelSweepRunner` shards that grid across a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping every
guarantee of the serial :class:`~repro.reliability.runner.ResilientRunner`
it wraps:

- **Deterministic, order-independent merging.**  Each grid pair keeps
  its index in the canonical (workload-major) sweep order; merged
  outcomes are re-assembled by index, so the report is bit-identical to
  a serial sweep no matter which worker finished first.
- **Per-worker seeding.**  Every shard re-seeds :mod:`random` from
  the sweep seed and its shard index before running, so any stochastic
  component a runner grows later stays reproducible under any worker
  scheduling.
- **Watchdog timeouts fail the pair, not the pool.**  The per-run
  ``max_cycles`` budget raises inside the worker, where the resilient
  runner converts it into a failed :class:`RunOutcome`; the process —
  and the rest of the sweep — keeps going.
- **Worker-crash recovery.**  A worker that dies outright (OOM-killed,
  segfaulted) breaks its pool future; the engine re-runs the dead
  worker's shard serially in the parent and reports the crash count.
- **Graceful serial degradation.**  If the grid cannot be pickled or
  the platform cannot fork a pool, the engine silently runs the exact
  serial sweep instead and records why.

Cache coordination comes for free: workers share the on-disk result
cache through :func:`repro.tools.cache.store`'s per-process temp files
and atomic replace.  Functional traces are coordinated the same way:
before sharding, the parent *pre-warms* the trace-memoization disk tier
(:mod:`repro.workloads.trace_cache`) with each unique workload's
columnar trace, so every pool worker unpacks compact column bytes
instead of re-executing the workload — and nothing ever pickles a
``DynInst`` list across the process boundary.

Timing-engine selection (``REPRO_TIMING_ENGINE``) crosses the process
boundary the same way as every other runner option: the wrapped
runner's ``timing_engine`` rides in the picklable
:class:`~repro.tools.pool.RunnerSpec` and is rebuilt into each
worker-side harness, while an unset engine defers to the environment
variable the workers inherit.  Both engines are bit-identical, so the
sweep's merged report never depends on the choice.
"""

from __future__ import annotations

import os
import pickle
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..chaos import injector as chaos
from ..cores.base import BoomConfig, RocketConfig
from ..reliability.runner import ResilientRunner, RunOutcome, SweepReport
from ..workloads import build_trace, trace_cache
from .checkpoint import (
    SweepCheckpoint,
    deserialize_outcome,
    point_key,
    serialize_outcome,
)
from .pool import (RunnerSpec, executor_factory as resolve_executor_factory,
                   in_worker, process_executor_factory, worker_init)

CoreConfig = Union[RocketConfig, BoomConfig]

#: Test hook: a worker that is about to run this workload dies with
#: ``os._exit`` instead, simulating a segfaulting/OOM-killed process.
#: Only honoured inside pool workers, so the serial recovery path (and
#: plain serial sweeps) complete normally.
_CRASH_ENV = "REPRO_PARALLEL_CRASH_WORKLOAD"

# Pool plumbing lives in repro.tools.pool (shared with the analysis
# service); these aliases keep the engine's historical import surface.
_worker_init = worker_init
_default_executor_factory = process_executor_factory


#: One grid pair: (canonical index, workload name, core config).
SweepTask = Tuple[int, str, CoreConfig]

#: What one shard hands back: indexed outcomes + quarantined cache keys.
ShardResult = Tuple[List[Tuple[int, RunOutcome]], List[str]]


def _run_shard(
    spec: RunnerSpec,
    shard_index: int,
    seed: int,
    tasks: Sequence[SweepTask],
) -> ShardResult:
    """Run one shard of the grid (in a pool worker or in the parent).

    Returns ``(indexed outcomes, quarantined cache keys)``; the indices
    let the parent merge shards deterministically.
    """
    random.seed(seed * 1_000_003 + shard_index)
    crash_workload = os.environ.get(_CRASH_ENV)
    runner = spec.build()
    report = SweepReport()
    indexed: List[Tuple[int, RunOutcome]] = []
    for index, workload, config in tasks:
        if in_worker():
            if crash_workload == workload:
                os._exit(13)
            # Chaos worker-kill seam: only real pool workers die (the
            # parent's serial recovery pass skips the hook), so every
            # injected kill is recoverable and sweeps terminate.
            chaos.maybe_kill_worker(f"shard:{workload}:{config.name}")
        indexed.append((index, runner.run_one(workload, config, report)))
    return indexed, report.quarantined_keys


@dataclass
class ParallelSweepReport(SweepReport):
    """A :class:`SweepReport` plus how the grid was executed."""

    engine: str = "serial"  # "parallel" | "serial" | "serial-fallback"
    workers: int = 1
    shards: int = 1
    worker_crashes: int = 0
    fallback_reason: Optional[str] = None
    recovered_indices: List[int] = field(default_factory=list)
    #: Grid indices restored from a sweep checkpoint instead of re-run.
    resumed_indices: List[int] = field(default_factory=list)

    def summary(self) -> str:
        header = (
            f"engine={self.engine} workers={self.workers} "
            f"shards={self.shards} crashes={self.worker_crashes}"
        )
        if self.resumed_indices:
            header += f" resumed={len(self.resumed_indices)}"
        if self.fallback_reason:
            header += f" fallback=[{self.fallback_reason}]"
        return header + "\n" + super().summary()


class ParallelSweepRunner:
    """Fault-tolerant sweeps, sharded across a process pool.

    ``runner`` supplies the sweep semantics (watchdog budget, retries,
    cache policy, events, scale); it runs serial shards directly and is
    distilled into a :class:`RunnerSpec` for pool workers.

    ``executor`` picks a rung of the shared executor ladder
    (:mod:`repro.tools.pool`): ``process`` (the default),  ``thread``,
    ``inline``, or ``shard`` — the last dispatches each grid shard to
    a multi-node service cluster through
    :class:`repro.service.shard.ShardExecutor` (``REPRO_SHARDS``).
    ``executor_factory`` is injectable for tests and wins over
    ``executor``: it receives the worker count and must return a
    ``ProcessPoolExecutor``-compatible context manager.  Any failure
    to build the pool or submit the shards degrades to the serial
    sweep.
    """

    def __init__(
        self,
        runner: Optional[ResilientRunner] = None,
        max_workers: Optional[int] = None,
        seed: int = 0,
        executor_factory=None,
        executor: str = "process",
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.runner = runner or ResilientRunner()
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self.seed = seed
        self.executor = executor
        self.executor_factory = (executor_factory
                                 or resolve_executor_factory(executor))

    # ------------------------------------------------------------------

    @staticmethod
    def build_grid(
        workloads: Sequence[str],
        configs: Sequence[CoreConfig],
    ) -> List[SweepTask]:
        """The canonical workload-major grid order of the serial sweep."""
        grid: List[SweepTask] = []
        for workload in workloads:
            for config in configs:
                grid.append((len(grid), workload, config))
        return grid

    @staticmethod
    def shard_grid(
        grid: Sequence[SweepTask],
        shards: int,
    ) -> List[List[SweepTask]]:
        """Round-robin sharding: deterministic and load-balanced (long
        workloads land in different shards instead of one hot shard)."""
        return [list(grid[start::shards]) for start in range(shards)]

    # ------------------------------------------------------------------

    def run_grid(
        self,
        workloads: Sequence[str],
        configs: Sequence[CoreConfig],
        checkpoint: Optional[SweepCheckpoint] = None,
    ) -> ParallelSweepReport:
        """Sweep the grid; parallel when possible, serial otherwise.

        With a *checkpoint*, pairs it already holds are restored
        instead of re-run, and every freshly completed pair is recorded
        as it lands — so a sweep killed mid-flight resumes from its
        last completed pair.  The caller owns the checkpoint lifecycle
        (``clear()`` after a fully successful sweep).
        """
        grid = self.build_grid(workloads, configs)
        resumed = self._resume_entries(grid, checkpoint)
        remaining = [task for task in grid if task[0] not in resumed]
        workers = min(self.max_workers, len(remaining)) or 1
        if workers <= 1:
            return self._run_serial(grid, engine="serial",
                                    checkpoint=checkpoint, resumed=resumed)

        self._prewarm_traces([w for _, w, _ in remaining])
        spec = RunnerSpec.from_runner(self.runner)
        shards = self.shard_grid(remaining, workers)
        try:
            # Pre-flight: anything unpicklable (exotic configs, spec
            # extensions) must surface here, not inside the pool.
            pickle.dumps((spec, shards))
        except Exception as exc:  # noqa: BLE001 - any failure degrades
            reason = f"unpicklable sweep: {type(exc).__name__}: {exc}"
            return self._run_serial(grid, engine="serial-fallback",
                                    reason=reason, checkpoint=checkpoint,
                                    resumed=resumed)

        merged: Dict[int, RunOutcome] = dict(resumed)
        quarantined: Dict[int, List[str]] = {}
        crashed_shards: List[int] = []
        try:
            with self.executor_factory(workers) as pool:
                futures = {}
                for shard_index, shard in enumerate(shards):
                    future = pool.submit(
                        _run_shard,
                        spec,
                        shard_index,
                        self.seed,
                        shard,
                    )
                    futures[future] = shard_index
                for future, shard_index in futures.items():
                    try:
                        indexed, keys = future.result()
                    except Exception:  # noqa: BLE001 - dead worker
                        crashed_shards.append(shard_index)
                        continue
                    for index, outcome in indexed:
                        merged[index] = outcome
                    quarantined[shard_index] = keys
                    self._record(checkpoint, [o for _, o in indexed])
        except Exception as exc:  # noqa: BLE001 - no pool at all
            reason = f"no process pool: {type(exc).__name__}: {exc}"
            return self._run_serial(grid, engine="serial-fallback",
                                    reason=reason, checkpoint=checkpoint,
                                    resumed=resumed)

        report = ParallelSweepReport(
            engine="parallel",
            workers=workers,
            shards=len(shards),
            worker_crashes=len(crashed_shards),
            resumed_indices=sorted(resumed),
        )
        # Recover every pair a dead worker took down with it, serially
        # and in-process (the crash hook only fires inside workers).
        for shard_index in sorted(crashed_shards):
            pending = [t for t in shards[shard_index] if t[0] not in merged]
            indexed, keys = _run_shard(spec, shard_index, self.seed, pending)
            for index, outcome in indexed:
                merged[index] = outcome
                report.recovered_indices.append(index)
            quarantined[shard_index] = keys
            self._record(checkpoint, [o for _, o in indexed])

        report.outcomes = [merged[index] for index, _, _ in grid]
        for shard_index in sorted(quarantined):
            report.quarantined_keys.extend(quarantined[shard_index])
        return report

    # ------------------------------------------------------------------

    def _resume_entries(
        self,
        grid: Sequence[SweepTask],
        checkpoint: Optional[SweepCheckpoint],
    ) -> Dict[int, RunOutcome]:
        """Grid indices restorable from the checkpoint (ok pairs only;
        failed pairs are retried on resume — deterministic failures
        simply fail again, flaky ones get another chance)."""
        if checkpoint is None:
            return {}
        entries = checkpoint.load()
        resumed: Dict[int, RunOutcome] = {}
        for index, workload, config in grid:
            payload = entries.get(point_key(workload, config.name))
            if payload is None:
                continue
            try:
                outcome = deserialize_outcome(payload)
            except Exception:  # noqa: BLE001 - damaged entry: re-run pair
                continue
            if outcome.ok:
                resumed[index] = outcome
        return resumed

    @staticmethod
    def _record(
        checkpoint: Optional[SweepCheckpoint],
        outcomes: Sequence[RunOutcome],
    ) -> None:
        """Persist freshly completed pairs (atomic, best-effort)."""
        if checkpoint is None:
            return
        items = {
            point_key(o.workload, o.config_name): serialize_outcome(o)
            for o in outcomes
            if o.ok
        }
        if items:
            checkpoint.record_many(items)

    # ------------------------------------------------------------------

    def _prewarm_traces(self, workloads: Sequence[str]) -> None:
        """Publish each unique workload's trace to the shared disk tier.

        Runs in the parent before any shard is dispatched, so every
        worker's first lookup is a disk hit (unpacking column bytes)
        rather than a redundant functional execution.  Failures are
        swallowed: a workload that cannot execute here will fail inside
        a worker too, where the resilient runner records it properly.
        """
        if not trace_cache.disk_enabled():
            return
        for workload in dict.fromkeys(workloads):
            try:
                build_trace(workload, scale=self.runner.scale)
            except Exception:  # noqa: BLE001 - worker reports the real error
                continue

    # ------------------------------------------------------------------

    def _run_serial(
        self,
        grid: Sequence[SweepTask],
        engine: str,
        reason: Optional[str] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
        resumed: Optional[Dict[int, RunOutcome]] = None,
    ) -> ParallelSweepReport:
        """The exact serial sweep, shaped like a parallel report."""
        resumed = resumed or {}
        report = ParallelSweepReport(
            engine=engine,
            workers=1,
            shards=1,
            fallback_reason=reason,
            resumed_indices=sorted(resumed),
        )
        for index, workload, config in grid:
            outcome = resumed.get(index)
            if outcome is None:
                outcome = self.runner.run_one(workload, config, report)
                self._record(checkpoint, [outcome])
            report.outcomes.append(outcome)
        return report
