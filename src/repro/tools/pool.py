"""Shared worker-pool plumbing: runner specs and executor factories.

Both the batch sweep engine (:mod:`repro.tools.parallel`) and the
long-running analysis service (:mod:`repro.service`) execute
:class:`~repro.reliability.runner.ResilientRunner` work inside a
process pool.  This module is the single home for the pieces that
setup requires, so neither side copy-pastes pool wiring:

- :class:`RunnerSpec` — a picklable recipe for rebuilding a resilient
  runner inside a worker process (the runner itself may hold
  unpicklable harness state such as fault injectors);
- :func:`worker_init` / :func:`in_worker` — pool-worker marking, used
  to confine crash-injection test hooks to real pool workers;
- executor factories for the three execution styles a caller can ask
  for: ``process`` (true parallelism, crash isolation), ``thread``
  (cheap concurrency for I/O-light service deployments and tests), and
  ``inline`` (synchronous execution in the submitting thread — serial
  fallback and deterministic unit testing).
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, ContextManager, Dict, Optional, Tuple

from ..reliability.runner import DEFAULT_MAX_CYCLES, ResilientRunner

_IN_WORKER = False


def worker_init() -> None:
    """Pool-worker initializer: marks the process as a worker.

    Also adopts any chaos plan the parent exported through the
    environment (``REPRO_CHAOS_PLAN``), so system-level fault injection
    reaches real pool workers with no extra plumbing.
    """
    global _IN_WORKER
    _IN_WORKER = True
    from ..chaos import injector as chaos

    chaos.activate_from_env()


def in_worker() -> bool:
    """True inside a process-pool worker (used to gate crash hooks)."""
    return _IN_WORKER


@dataclass(frozen=True)
class RunnerSpec:
    """Picklable recipe for rebuilding a :class:`ResilientRunner`.

    Worker processes cannot receive the runner itself (its harness may
    carry fault injectors or other unpicklable state), so pool callers
    ship this value object instead.  Components that fall outside the
    spec — custom invariant checkers, fault injectors, backoff sleepers
    — are deliberately serial-only: campaigns that need them should run
    through :class:`ResilientRunner` directly.
    """

    core: str = "boom"
    increment_mode: str = "adders"
    mode: str = "baremetal"
    event_names: Optional[Tuple[str, ...]] = None
    scale: float = 1.0
    max_attempts: int = 3
    max_cycles: Optional[int] = DEFAULT_MAX_CYCLES
    backoff_base: float = 0.0
    use_cache: bool = True
    #: Timing-engine override rebuilt into the worker-side harness
    #: (None defers to ``REPRO_TIMING_ENGINE`` in the worker process).
    timing_engine: Optional[str] = None
    #: Absolute ``time.time()`` wall-clock deadline carried from the
    #: CLI / service job into the worker-side runner: attempts that
    #: cannot start before it fail fast with ``DeadlineExceeded``.
    deadline: Optional[float] = None
    #: Multicore dispatch: a named scenario routes
    #: :func:`repro.service.workers.execute_job` through the lockstep
    #: harness instead of the single-core runner.  The override fields
    #: mirror :meth:`repro.multicore.Scenario.with_overrides`; None
    #: means "use the scenario's own value".
    scenario: Optional[str] = None
    scenario_cores: Optional[int] = None
    scenario_scale: Optional[float] = None
    scenario_shared_bus: Optional[bool] = None
    scenario_arbitration: Optional[str] = None
    #: Windowed dispatch: a window count routes
    #: :func:`repro.service.workers.execute_job` through the windowed
    #: engine (:mod:`repro.cores.windowed`) instead of the single-shot
    #: runner.  ``windows_warmup=None`` defers to the engine default;
    #: ``windows_sampled`` switches to extrapolated sampling (results
    #: are always labeled ``sampled=True``).
    windows: Optional[int] = None
    windows_warmup: Optional[int] = None
    windows_sampled: bool = False

    @classmethod
    def from_runner(cls, runner: ResilientRunner) -> "RunnerSpec":
        harness = runner.harness
        event_names = tuple(runner.event_names) if runner.event_names else None
        return cls(
            core=harness.core,
            increment_mode=harness.increment_mode,
            mode=harness.mode,
            event_names=event_names,
            scale=runner.scale,
            max_attempts=runner.max_attempts,
            max_cycles=runner.max_cycles,
            backoff_base=runner.backoff_base,
            use_cache=runner.use_cache,
            timing_engine=runner.timing_engine,
            deadline=runner.deadline,
        )

    def build(self) -> ResilientRunner:
        from ..pmu.harness import PerfHarness

        harness = PerfHarness(
            core=self.core,
            increment_mode=self.increment_mode,
            mode=self.mode,
            timing_engine=self.timing_engine,
        )
        return ResilientRunner(
            harness=harness,
            event_names=self.event_names,
            scale=self.scale,
            max_attempts=self.max_attempts,
            max_cycles=self.max_cycles,
            backoff_base=self.backoff_base,
            use_cache=self.use_cache,
            deadline=self.deadline,
        )


def process_executor_factory(workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=workers, initializer=worker_init)


def thread_executor_factory(workers: int) -> ThreadPoolExecutor:
    return ThreadPoolExecutor(max_workers=workers)


class InlineExecutor:
    """Executor that runs each submission synchronously on submit.

    The deterministic degenerate pool: no concurrency, no pickling, no
    crash isolation.  Used as the serial fallback and in unit tests
    where scheduling order must be exact.
    """

    def submit(self, fn, *args, **kwargs) -> "Future":
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirror pool workers
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, **_: object) -> None:
        return None

    def __enter__(self) -> "InlineExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def inline_executor_factory(workers: int) -> InlineExecutor:
    del workers
    return InlineExecutor()


ExecutorFactory = Callable[[int], ContextManager]

#: Executor styles selectable by name (``repro-tma serve --executor``).
EXECUTOR_FACTORIES: Dict[str, ExecutorFactory] = {
    "process": process_executor_factory,
    "thread": thread_executor_factory,
    "inline": inline_executor_factory,
}


def executor_factory(style: str) -> ExecutorFactory:
    try:
        return EXECUTOR_FACTORIES[style]
    except KeyError:
        raise ValueError(
            f"unknown executor style {style!r}; "
            f"choose from {sorted(EXECUTOR_FACTORIES)}"
        ) from None
