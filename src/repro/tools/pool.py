"""Shared worker-pool plumbing: runner specs and the executor ladder.

Both the batch sweep engine (:mod:`repro.tools.parallel`) and the
long-running analysis service (:mod:`repro.service`) execute
:class:`~repro.reliability.runner.ResilientRunner` work behind one
executor interface.  This module is the single home for the pieces
that setup requires, so neither side copy-pastes pool wiring:

- :class:`RunnerSpec` — a picklable recipe for rebuilding a resilient
  runner inside a worker process (the runner itself may hold
  unpicklable harness state such as fault injectors);
- :func:`worker_init` / :func:`in_worker` — pool-worker marking, used
  to confine crash-injection test hooks to real pool workers;
- the **executor ladder**: every execution style a caller can ask for
  sits behind the same ``submit``/``shutdown``/context-manager
  contract, so swapping ``inline`` → ``process`` → ``shard`` is a
  one-word configuration change, never a code change:

  ========= ==========================================================
  style     where the work runs
  ========= ==========================================================
  inline    synchronously in the submitting thread — serial fallback
            and deterministic unit testing (:class:`InlineExecutor`)
  thread    a thread pool — cheap concurrency for I/O-light service
            deployments and tests (:class:`ThreadExecutor`)
  process   a process pool — true parallelism with crash isolation
            (:class:`ProcessExecutor`)
  shard     a multi-node shard cluster over HTTP, routed by consistent
            hash of the canonical job key
            (:class:`repro.service.shard.ShardExecutor`)
  ========= ==========================================================

The ``shard`` rung cannot ship arbitrary closures to another machine,
so remotable entry points register a *remote adapter* via
:func:`register_remote`; a shard executor looks the adapter up by
function identity and dispatches through it, and refuses anything
unregistered instead of silently running it locally.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, ContextManager, Dict, Optional, Tuple

from ..reliability.runner import DEFAULT_MAX_CYCLES, ResilientRunner

_IN_WORKER = False


def worker_init() -> None:
    """Pool-worker initializer: marks the process as a worker.

    Also adopts any chaos plan the parent exported through the
    environment (``REPRO_CHAOS_PLAN``), so system-level fault injection
    reaches real pool workers with no extra plumbing.
    """
    global _IN_WORKER
    _IN_WORKER = True
    from ..chaos import injector as chaos

    chaos.activate_from_env()


def in_worker() -> bool:
    """True inside a process-pool worker (used to gate crash hooks)."""
    return _IN_WORKER


@dataclass(frozen=True)
class RunnerSpec:
    """Picklable recipe for rebuilding a :class:`ResilientRunner`.

    Worker processes cannot receive the runner itself (its harness may
    carry fault injectors or other unpicklable state), so pool callers
    ship this value object instead.  Components that fall outside the
    spec — custom invariant checkers, fault injectors, backoff sleepers
    — are deliberately serial-only: campaigns that need them should run
    through :class:`ResilientRunner` directly.
    """

    core: str = "boom"
    increment_mode: str = "adders"
    mode: str = "baremetal"
    event_names: Optional[Tuple[str, ...]] = None
    scale: float = 1.0
    max_attempts: int = 3
    max_cycles: Optional[int] = DEFAULT_MAX_CYCLES
    backoff_base: float = 0.0
    use_cache: bool = True
    #: Timing-engine override rebuilt into the worker-side harness
    #: (None defers to ``REPRO_TIMING_ENGINE`` in the worker process).
    timing_engine: Optional[str] = None
    #: Absolute ``time.time()`` wall-clock deadline carried from the
    #: CLI / service job into the worker-side runner: attempts that
    #: cannot start before it fail fast with ``DeadlineExceeded``.
    deadline: Optional[float] = None
    #: Multicore dispatch: a named scenario routes
    #: :func:`repro.service.workers.execute_job` through the lockstep
    #: harness instead of the single-core runner.  The override fields
    #: mirror :meth:`repro.multicore.Scenario.with_overrides`; None
    #: means "use the scenario's own value".
    scenario: Optional[str] = None
    scenario_cores: Optional[int] = None
    scenario_scale: Optional[float] = None
    scenario_shared_bus: Optional[bool] = None
    scenario_arbitration: Optional[str] = None
    #: Windowed dispatch: a window count routes
    #: :func:`repro.service.workers.execute_job` through the windowed
    #: engine (:mod:`repro.cores.windowed`) instead of the single-shot
    #: runner.  ``windows_warmup=None`` defers to the engine default;
    #: ``windows_sampled`` switches to extrapolated sampling (results
    #: are always labeled ``sampled=True``).
    windows: Optional[int] = None
    windows_warmup: Optional[int] = None
    windows_sampled: bool = False

    @classmethod
    def from_runner(cls, runner: ResilientRunner) -> "RunnerSpec":
        harness = runner.harness
        event_names = tuple(runner.event_names) if runner.event_names else None
        return cls(
            core=harness.core,
            increment_mode=harness.increment_mode,
            mode=harness.mode,
            event_names=event_names,
            scale=runner.scale,
            max_attempts=runner.max_attempts,
            max_cycles=runner.max_cycles,
            backoff_base=runner.backoff_base,
            use_cache=runner.use_cache,
            timing_engine=runner.timing_engine,
            deadline=runner.deadline,
        )

    def build(self) -> ResilientRunner:
        from ..pmu.harness import PerfHarness

        harness = PerfHarness(
            core=self.core,
            increment_mode=self.increment_mode,
            mode=self.mode,
            timing_engine=self.timing_engine,
        )
        return ResilientRunner(
            harness=harness,
            event_names=self.event_names,
            scale=self.scale,
            max_attempts=self.max_attempts,
            max_cycles=self.max_cycles,
            backoff_base=self.backoff_base,
            use_cache=self.use_cache,
            deadline=self.deadline,
        )


# ---------------------------------------------------------------------------
# The executor ladder


class ProcessExecutor(ProcessPoolExecutor):
    """Process-pool rung: true parallelism, crash isolation.

    A plain :class:`~concurrent.futures.ProcessPoolExecutor` with the
    worker initializer pre-wired, so every rung of the ladder is
    constructed the same way: ``Executor(workers)``.
    """

    kind = "process"

    def __init__(self, workers: int) -> None:
        super().__init__(max_workers=workers, initializer=worker_init)
        self.workers = workers


class ThreadExecutor(ThreadPoolExecutor):
    """Thread-pool rung: cheap concurrency, shared interpreter."""

    kind = "thread"

    def __init__(self, workers: int) -> None:
        super().__init__(max_workers=workers)
        self.workers = workers


class InlineExecutor:
    """Executor that runs each submission synchronously on submit.

    The deterministic degenerate pool: no concurrency, no pickling, no
    crash isolation.  Used as the serial fallback and in unit tests
    where scheduling order must be exact.
    """

    kind = "inline"

    def __init__(self, workers: int = 1) -> None:
        self.workers = workers

    def submit(self, fn, *args, **kwargs) -> "Future":
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirror pool workers
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, **_: object) -> None:
        return None

    def __enter__(self) -> "InlineExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def process_executor_factory(workers: int) -> ProcessExecutor:
    return ProcessExecutor(workers)


def thread_executor_factory(workers: int) -> ThreadExecutor:
    return ThreadExecutor(workers)


def inline_executor_factory(workers: int) -> InlineExecutor:
    return InlineExecutor(workers)


ExecutorFactory = Callable[[int], ContextManager]

#: Executor styles selectable by name (``repro-tma serve --executor``).
#: The ``shard`` rung registers itself on import of
#: :mod:`repro.service.shard`; :func:`executor_factory` triggers that
#: import lazily so ``tools`` never hard-depends on the service tier.
EXECUTOR_FACTORIES: Dict[str, ExecutorFactory] = {
    "process": process_executor_factory,
    "thread": thread_executor_factory,
    "inline": inline_executor_factory,
}

#: Styles provided by modules that register on first use.
_LAZY_STYLES = {"shard": "repro.service.shard"}


def register_executor(style: str, factory: ExecutorFactory) -> None:
    """Register a ladder rung under *style* (idempotent overwrite)."""
    EXECUTOR_FACTORIES[style] = factory


def executor_factory(style: str) -> ExecutorFactory:
    if style not in EXECUTOR_FACTORIES and style in _LAZY_STYLES:
        import importlib

        importlib.import_module(_LAZY_STYLES[style])
    try:
        return EXECUTOR_FACTORIES[style]
    except KeyError:
        known = sorted(set(EXECUTOR_FACTORIES) | set(_LAZY_STYLES))
        raise ValueError(
            f"unknown executor style {style!r}; choose from {known}"
        ) from None


def make_executor(style: str, workers: int) -> ContextManager:
    """Build one ladder rung by name: ``make_executor('process', 4)``."""
    return executor_factory(style)(workers)


# ---------------------------------------------------------------------------
# Remote dispatch registry (the shard rung's contract)

#: function → adapter.  An adapter has the signature
#: ``adapter(executor, *args, **kwargs)`` and performs the remote
#: equivalent of ``fn(*args, **kwargs)`` through the shard executor's
#: routing/client machinery, returning the same result type.
_REMOTE_ADAPTERS: Dict[Callable, Callable] = {}


def register_remote(fn: Callable, adapter: Callable) -> None:
    """Mark *fn* as remotable through the given adapter."""
    _REMOTE_ADAPTERS[fn] = adapter


def remote_adapter(fn: Callable) -> Optional[Callable]:
    """The registered remote adapter for *fn*, or None."""
    return _REMOTE_ADAPTERS.get(fn)
