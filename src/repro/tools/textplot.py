"""Terminal plotting helpers: sparklines, bar charts, stacked series.

The artifact's ``tma_tool`` produces matplotlib figures; the
reproduction renders the same series for a terminal.  These helpers are
deliberately dependency-free (no matplotlib offline) and deterministic,
so tests can assert on their output.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float],
              maximum: Optional[float] = None) -> str:
    """One-line sparkline; scales to *maximum* (default: series max)."""
    if not values:
        return ""
    top = maximum if maximum is not None else max(values)
    if top <= 0:
        return _SPARK_LEVELS[0] * len(values)
    out = []
    for value in values:
        level = int(round((len(_SPARK_LEVELS) - 1)
                          * max(0.0, min(1.0, value / top))))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def hbar_chart(rows: Mapping[str, float], width: int = 40,
               maximum: Optional[float] = None,
               fmt: str = "{:8.2f}") -> str:
    """Horizontal bar chart, one labelled row per entry."""
    if not rows:
        return ""
    top = maximum if maximum is not None else max(rows.values())
    label_width = max(len(name) for name in rows) + 2
    lines = []
    for name, value in rows.items():
        filled = 0 if top <= 0 else int(round(
            width * max(0.0, min(1.0, value / top))))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{name:<{label_width}s}|{bar}| "
                     + fmt.format(value))
    return "\n".join(lines)


def stacked_series(series: Mapping[str, Sequence[float]],
                   width: Optional[int] = None) -> str:
    """Multiple aligned sparklines sharing a common 0..1 scale.

    Intended for TMA phase profiles: one row per class, one column per
    window, all scaled to 1.0 (a slot fraction).
    """
    if not series:
        return ""
    label_width = max(len(name) for name in series) + 2
    lines = []
    for name, values in series.items():
        values = list(values)
        if width is not None:
            values = values[:width]
        lines.append(f"{name:<{label_width}s}"
                     f"{sparkline(values, maximum=1.0)}")
    return "\n".join(lines)


def percent_axis(count: int, step: int = 10) -> str:
    """A crude column ruler to print under a phase profile."""
    ruler = []
    for index in range(count):
        ruler.append("|" if index % step == 0 else "-")
    return "".join(ruler)
