"""``tma_tool``: the one-call workload -> TMA pipeline.

This is the reproduction's equivalent of the artifact's ``tma_tool``
commands: it assembles the workload, functionally executes it, replays
the trace through the requested core model (with disk-cached results),
and applies the TMA model.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

from ..core.tma import TmaResult, compute_tma
from ..cores.base import BoomConfig, CoreResult, RocketConfig
from ..cores.boom import BoomCore
from ..cores.configs import LARGE_BOOM, ROCKET
from ..cores.rocket import RocketCore
from ..isa.errors import DeadlineExceeded
from ..uarch.cache import CacheConfig
from ..workloads import build_trace, workload_names
from . import cache
from .checkpoint import SweepCheckpoint, point_key

CoreConfig = Union[RocketConfig, BoomConfig]


class SuiteDeadlineExceeded(DeadlineExceeded):
    """A suite ran out of wall-clock budget; partial results attached.

    ``results`` holds every workload finished (or restored from the
    checkpoint) before the deadline lapsed; ``remaining`` names the
    workloads left undone.  With a checkpoint in play, a later
    ``--resume`` run completes only ``remaining``.
    """

    def __init__(self, message: str, results: List[TmaResult],
                 remaining: List[str]) -> None:
        super().__init__(message)
        self.results = results
        self.remaining = remaining


def run_core(workload: str, config: CoreConfig, scale: float = 1.0,
             use_cache: bool = True,
             engine: Optional[str] = None,
             windows: Optional[int] = None,
             warmup: Optional[int] = None,
             sampled: bool = False,
             workers: Optional[int] = None,
             progress: bool = False) -> CoreResult:
    """Replay *workload* through the timing model for *config*.

    Results are cached on disk keyed by a fingerprint of every module
    that influences timing, so repeated benchmark runs are cheap.

    *engine* selects the timing-engine implementation (``None`` defers
    to ``REPRO_TIMING_ENGINE``, default ``columnar``).  The engines are
    bit-identical, so the disk cache is deliberately shared between
    them: the key does not include the engine.

    *windows* shards the trace into K instruction windows simulated in
    parallel and stitched (:mod:`repro.cores.windowed`); *warmup* sets
    the per-window warmup overlap, *sampled* switches to extrapolated
    SimPoint-style sampling (result labeled ``sampled=True``).  With no
    explicit *windows*, the ``REPRO_WINDOWS`` / ``REPRO_WINDOW_WARMUP``
    environment knobs supply defaults.  Windowed results use their own
    cache keys (:func:`repro.tools.cache.windowed_cache_key`), so they
    never collide with plain runs.  Workloads in the ``huge`` registry
    tier are *only* runnable through the windowed/sampled paths.
    """
    from ..cores.windowed import resolve_windows_env, run_windowed
    from ..workloads.registry import HUGE_CATEGORY, workload_category

    if windows is None:
        env_windows, env_warmup = resolve_windows_env()
        windows = env_windows
        if warmup is None:
            warmup = env_warmup
    if windows is not None:
        return run_windowed(
            workload, config, windows=windows, scale=scale, warmup=warmup,
            sampled=sampled, engine=engine, use_cache=use_cache,
            workers=workers, progress=progress)
    if sampled:
        raise ValueError("sampled=True requires windows= to be set")
    if workload_category(workload) == HUGE_CATEGORY:
        raise ValueError(
            f"workload {workload!r} is in the {HUGE_CATEGORY!r} tier and "
            f"is only runnable windowed: pass windows= (or --windows), "
            f"optionally with sampled=True")
    key = cache.cache_key(workload, scale, config)
    if use_cache:
        cached = cache.load(key)
        if cached is not None:
            return cached
    trace = build_trace(workload, scale=scale)
    if isinstance(config, RocketConfig):
        core = RocketCore(config)
    else:
        core = BoomCore(config)
    result = core.run(trace, engine=engine)
    if use_cache:
        cache.store(key, result)
    return result


def run_tma(workload: str, config: CoreConfig = LARGE_BOOM,
            scale: float = 1.0, use_cache: bool = True,
            engine: Optional[str] = None,
            windows: Optional[int] = None,
            warmup: Optional[int] = None,
            sampled: bool = False,
            workers: Optional[int] = None,
            progress: bool = False) -> TmaResult:
    """End-to-end: workload name + core config -> TMA classification."""
    return compute_tma(run_core(workload, config, scale=scale,
                                use_cache=use_cache, engine=engine,
                                windows=windows, warmup=warmup,
                                sampled=sampled, workers=workers,
                                progress=progress))


def run_suite(workloads: Sequence[str], config: CoreConfig,
              scale: float = 1.0,
              use_cache: bool = True,
              engine: Optional[str] = None,
              checkpoint: Optional[SweepCheckpoint] = None,
              deadline: Optional[float] = None,
              windows: Optional[int] = None,
              warmup: Optional[int] = None,
              sampled: bool = False,
              workers: Optional[int] = None,
              progress: bool = False) -> List[TmaResult]:
    """TMA for a list of workloads on one configuration.

    With a *checkpoint*, workloads it already holds are restored (the
    stored :class:`CoreResult` round-trips bit-exactly; the TMA
    classification is recomputed) and every freshly computed workload
    is recorded as it completes — so a killed run resumes from its
    last finished workload.  The caller owns ``checkpoint.clear()``.

    *deadline* is an absolute ``time.time()`` epoch; when it lapses
    between workloads, :class:`SuiteDeadlineExceeded` is raised
    carrying the partial results (everything completed so far stays
    checkpointed).
    """
    results: List[TmaResult] = []
    for position, name in enumerate(workloads):
        key = point_key(name, config.name)
        if windows is not None:
            # Windowed runs must never satisfy (or poison) a plain
            # run's checkpoint entry: fold the window parameters in.
            key += f";windows={windows};warmup={warmup};sampled={int(sampled)}"
        if checkpoint is not None:
            payload = checkpoint.get(key)
            if payload is not None:
                try:
                    results.append(
                        compute_tma(cache.deserialize_result(payload)))
                    continue
                except Exception:  # noqa: BLE001 - damaged entry: re-run
                    pass
        if deadline is not None and time.time() >= deadline:
            remaining = list(workloads[position:])
            raise SuiteDeadlineExceeded(
                f"suite deadline lapsed with {len(remaining)} of "
                f"{len(workloads)} workloads remaining",
                results=results, remaining=remaining)
        result = run_core(name, config, scale=scale, use_cache=use_cache,
                          engine=engine, windows=windows, warmup=warmup,
                          sampled=sampled, workers=workers, progress=progress)
        if checkpoint is not None:
            checkpoint.record(key, cache.serialize_result(result))
        results.append(compute_tma(result))
    return results


def run_grid(workloads: Sequence[str], points: Sequence["GridPoint"],
             scale: float = 1.0,
             use_cache: bool = True,
             engine: Optional[str] = None,
             workers: Optional[int] = None,
             checkpoint: Optional[SweepCheckpoint] = None,
             deadline: Optional[float] = None,
             windows: Optional[int] = None,
             warmup: Optional[int] = None,
             sampled: bool = False,
             progress: bool = False) -> List["BatchResult"]:
    """Batched design-space sweep: workloads x grid points.

    Each workload runs through :func:`repro.cores.batch.run_batch`,
    which pays the trace fetch, descriptor-table compiles, and TAGE
    fold derivations once per workload instead of once per (workload,
    config) pair — with every per-point result bit-identical to
    :func:`run_core`.  Checkpoint/resume and deadline semantics mirror
    :func:`run_suite`: the deadline is checked between workloads, and
    :class:`SuiteDeadlineExceeded` carries the finished
    :class:`~repro.cores.batch.BatchResult` list (points completed
    inside an interrupted workload stay checkpointed).
    """
    from ..cores.batch import run_batch

    results: List["BatchResult"] = []
    for position, name in enumerate(workloads):
        if deadline is not None and time.time() >= deadline:
            remaining = list(workloads[position:])
            raise SuiteDeadlineExceeded(
                f"grid sweep deadline lapsed with {len(remaining)} of "
                f"{len(workloads)} workloads remaining",
                results=results, remaining=remaining)
        results.append(run_batch(
            name, points, scale=scale, engine=engine, use_cache=use_cache,
            checkpoint=checkpoint, workers=workers, windows=windows,
            warmup=warmup, sampled=sampled, progress=progress))
    return results


def micro_suite() -> List[str]:
    """The microbenchmark list shown in Fig. 7a/k."""
    return workload_names("micro")


def spec_suite() -> List[str]:
    """The SPEC CPU2017 intrate proxy list shown in Fig. 7g."""
    return workload_names("spec")


def rocket_with_l1d(size_kib: int) -> RocketConfig:
    """A Rocket config with a resized L1 D-cache (Rocket CS1)."""
    from dataclasses import replace

    l1d = CacheConfig("L1D", size_kib * 1024, 8, 64, hit_latency=2)
    return replace(ROCKET, name=f"Rocket-{size_kib}KiB-L1D", l1d=l1d)
