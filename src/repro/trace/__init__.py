"""Microarchitectural event tracing and the temporal-TMA analyzer."""

from .analyzer import (DEFAULT_WINDOW_PAD, OverlapReport, RecoverySequence,
                       TemporalTma, analyze_overlap,
                       check_fetch_bubble_formula, find_first, length_cdf,
                       modal_length, recovery_sequences, render_raster,
                       temporal_tma, validate_against_counters,
                       windowed_tma)
from .autocounter import (AutoCounter, AutoCounterSample,
                          CounterAnnotation)
from .bundle import (TraceBundle, TraceField, boom_tma_bundle,
                     rocket_frontend_bundle, rocket_tma_bundle)
from .tracer import (CycleTracer, DEFAULT_CHUNK_CYCLES, DmaTraceReader,
                     TraceBridge, capture_trace)

__all__ = [
    "AutoCounter",
    "AutoCounterSample",
    "CounterAnnotation",
    "CycleTracer",
    "DEFAULT_CHUNK_CYCLES",
    "DEFAULT_WINDOW_PAD",
    "DmaTraceReader",
    "OverlapReport",
    "RecoverySequence",
    "TemporalTma",
    "TraceBridge",
    "TraceBundle",
    "TraceField",
    "analyze_overlap",
    "boom_tma_bundle",
    "capture_trace",
    "check_fetch_bubble_formula",
    "find_first",
    "length_cdf",
    "modal_length",
    "recovery_sequences",
    "render_raster",
    "rocket_frontend_bundle",
    "rocket_tma_bundle",
    "temporal_tma",
    "validate_against_counters",
    "windowed_tma",
]
