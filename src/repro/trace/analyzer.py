"""Trace analyzer: temporal TMA, overlap bounds, recovery CDFs (§IV-C/V-B).

Counters summarize; traces explain.  This module implements the paper's
out-of-band validation workflow on decoded per-cycle signal series:

- **Temporal TMA** — classify every cycle's slots directly from the
  trace and compare against the counter-based model (the "trace-based
  validation" of Fig. 4).
- **Overlap bounding** (Table VI) — scan for I-cache refills that overlap
  Recovering windows inside a padded rolling window; any fetch bubble in
  the intersection is ambiguous, and the total bounds the perturbation of
  the Frontend and Bad Speculation classes.
- **Recovery sequences** (Fig. 8b) — extract every run of consecutive
  Recovering cycles and build its CDF; the dominant length is the
  constant the TMA model uses for ``M_rl``.
- **ASCII rasters** (Fig. 3 / Fig. 8a) — render trace windows as dot
  plots for eyeballing individual events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: The paper pads overlap windows by 50 cycles to stay conservative.
DEFAULT_WINDOW_PAD = 50


def _popcount_series(series: Sequence[int]) -> int:
    return sum(value.bit_count() for value in series)


def _padded_activity(series: Sequence[int], pad: int) -> List[bool]:
    """Boolean per cycle: was the signal high within +/- pad cycles?"""
    n = len(series)
    active = [False] * n
    last_high = -(pad + 1)
    for cycle, value in enumerate(series):
        if value:
            last_high = cycle
        if cycle - last_high <= pad:
            active[cycle] = True
    next_high = n + pad + 1
    for cycle in range(n - 1, -1, -1):
        if series[cycle]:
            next_high = cycle
        if next_high - cycle <= pad:
            active[cycle] = True
    return active


# ---------------------------------------------------------------------------
# temporal TMA
# ---------------------------------------------------------------------------

@dataclass
class TemporalTma:
    """Slot classification computed cycle by cycle from a trace."""

    cycles: int
    commit_width: int
    retiring_slots: int
    bad_spec_slots: int
    frontend_slots: int
    backend_slots: int

    @property
    def total_slots(self) -> int:
        return self.cycles * self.commit_width

    def fractions(self) -> Dict[str, float]:
        total = max(1, self.total_slots)
        return {
            "retiring": self.retiring_slots / total,
            "bad_speculation": self.bad_spec_slots / total,
            "frontend": self.frontend_slots / total,
            "backend": self.backend_slots / total,
        }


def temporal_tma(signals: Mapping[str, Sequence[int]],
                 commit_width: int) -> TemporalTma:
    """Classify every slot straight from the trace.

    Priority per cycle: retired µops are Retiring; Recovering cycles and
    issued-but-eventually-flushed work are Bad Speculation; fetch-bubble
    lanes are Frontend; whatever is left of the W_C slots is Backend.
    """
    retired_series = signals.get("uops_retired",
                                 signals.get("instr_retired", []))
    recovering = signals.get("recovering", [])
    bubbles = signals.get("fetch_bubbles", [])
    cycles = max(len(retired_series), len(recovering), len(bubbles))

    retiring = 0
    bad_spec = 0
    frontend = 0
    backend = 0
    for cycle in range(cycles):
        slots_left = commit_width
        retired = retired_series[cycle].bit_count() \
            if cycle < len(retired_series) else 0
        retired = min(retired, slots_left)
        retiring += retired
        slots_left -= retired
        if cycle < len(recovering) and recovering[cycle]:
            bad_spec += slots_left
            continue
        bubble = bubbles[cycle].bit_count() if cycle < len(bubbles) else 0
        bubble = min(bubble, slots_left)
        frontend += bubble
        slots_left -= bubble
        backend += slots_left
    return TemporalTma(cycles=cycles, commit_width=commit_width,
                       retiring_slots=retiring, bad_spec_slots=bad_spec,
                       frontend_slots=frontend, backend_slots=backend)


def windowed_tma(signals: Mapping[str, Sequence[int]],
                 commit_width: int,
                 window: int = 1024) -> List[TemporalTma]:
    """Temporal TMA over fixed windows ("performance event windows").

    The paper's temporal model exists precisely so characterization can
    look at *windows* rather than whole-run aggregates (§IV-C); this
    splits the trace into ``window``-cycle chunks and classifies each
    independently, giving a phase profile of the workload.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    length = max((len(series) for series in signals.values()),
                 default=0)
    profiles: List[TemporalTma] = []
    for start in range(0, length, window):
        chunk = {name: series[start:start + window]
                 for name, series in signals.items()}
        profiles.append(temporal_tma(chunk, commit_width))
    return profiles


def validate_against_counters(temporal: TemporalTma,
                              counter_fractions: Mapping[str, float]
                              ) -> Dict[str, float]:
    """Per-class |trace - counters| deltas (validation of Fig. 4)."""
    trace_fractions = temporal.fractions()
    return {name: abs(trace_fractions[name]
                      - counter_fractions.get(name, 0.0))
            for name in trace_fractions}


# ---------------------------------------------------------------------------
# overlap bounding (Table VI)
# ---------------------------------------------------------------------------

@dataclass
class OverlapReport:
    """Upper bound on slots that could belong to either of two classes."""

    total_slots: int
    overlap_slots: int
    frontend_fraction: float
    bad_spec_fraction: float

    @property
    def overlap_fraction(self) -> float:
        return self.overlap_slots / max(1, self.total_slots)

    @property
    def frontend_perturbation(self) -> float:
        """Worst-case relative shift of Frontend if all overlap moved."""
        if self.frontend_fraction <= 0:
            return 0.0
        return self.overlap_fraction / self.frontend_fraction

    @property
    def bad_spec_perturbation(self) -> float:
        if self.bad_spec_fraction <= 0:
            return 0.0
        return self.overlap_fraction / self.bad_spec_fraction

    def render(self) -> str:
        rows = [
            ("Overlap Frontend, I$-miss & Bad Speculation",
             f"{100 * self.overlap_fraction:.3f}%", ""),
            ("Frontend", f"{100 * self.frontend_fraction:.2f}%",
             f"± {100 * self.frontend_perturbation:.2f}%"),
            ("Bad Speculation", f"{100 * self.bad_spec_fraction:.2f}%",
             f"± {100 * self.bad_spec_perturbation:.2f}%"),
        ]
        width = max(len(row[0]) for row in rows) + 2
        return "\n".join(f"{name:<{width}s}{value:>9s} {err}"
                         for name, value, err in rows)


def analyze_overlap(signals: Mapping[str, Sequence[int]],
                    commit_width: int,
                    window_pad: int = DEFAULT_WINDOW_PAD) -> OverlapReport:
    """Bound the Frontend / Bad-Speculation overlap (Table VI).

    Scans for I-cache refill activity and Recovering windows within a
    rolling window padded by *window_pad* cycles; any fetch bubble or
    recovery slot inside the intersection could count toward either
    class, so their total is a conservative upper bound.
    """
    icache = [a or b for a, b in zip(
        _series(signals, "icache_miss"), _series(signals, "icache_blocked"))]
    recovering = _series(signals, "recovering")
    bubbles = _series(signals, "fetch_bubbles")
    cycles = len(icache)

    icache_window = _padded_activity(icache, window_pad)
    recovering_window = _padded_activity(recovering, window_pad)

    overlap_slots = 0
    for cycle in range(cycles):
        if icache_window[cycle] and recovering_window[cycle]:
            if cycle < len(bubbles) and bubbles[cycle]:
                overlap_slots += bubbles[cycle].bit_count()
            if cycle < len(recovering) and recovering[cycle]:
                overlap_slots += commit_width

    temporal = temporal_tma(signals, commit_width)
    fractions = temporal.fractions()
    return OverlapReport(
        total_slots=temporal.total_slots, overlap_slots=overlap_slots,
        frontend_fraction=fractions["frontend"],
        bad_spec_fraction=fractions["bad_speculation"])


def _series(signals: Mapping[str, Sequence[int]],
            name: str) -> Sequence[int]:
    series = signals.get(name)
    if series is None:
        lengths = [len(s) for s in signals.values()]
        return [0] * (max(lengths) if lengths else 0)
    return series


# ---------------------------------------------------------------------------
# recovery sequences (Fig. 8b)
# ---------------------------------------------------------------------------

@dataclass
class RecoverySequence:
    """One run of consecutive Recovering cycles."""

    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length


def recovery_sequences(recovering: Sequence[int]) -> List[RecoverySequence]:
    """Extract every maximal run of Recovering cycles."""
    sequences: List[RecoverySequence] = []
    run_start: Optional[int] = None
    for cycle, value in enumerate(recovering):
        if value and run_start is None:
            run_start = cycle
        elif not value and run_start is not None:
            sequences.append(RecoverySequence(run_start, cycle - run_start))
            run_start = None
    if run_start is not None:
        sequences.append(RecoverySequence(run_start,
                                          len(recovering) - run_start))
    return sequences


def length_cdf(lengths: Sequence[int]) -> List[Tuple[int, float]]:
    """(length, cumulative fraction) points of the CDF (Fig. 8b)."""
    if not lengths:
        return []
    ordered = sorted(lengths)
    total = len(ordered)
    points: List[Tuple[int, float]] = []
    seen = 0
    previous = None
    for value in ordered:
        seen += 1
        if value != previous:
            points.append((value, seen / total))
            previous = value
        else:
            points[-1] = (value, seen / total)
    return points


def modal_length(lengths: Sequence[int]) -> int:
    """The dominant recovery length (the paper's M_rl = 4)."""
    if not lengths:
        return 0
    counts: Dict[int, int] = {}
    for value in lengths:
        counts[value] = counts.get(value, 0) + 1
    return max(counts, key=lambda k: (counts[k], -k))


# ---------------------------------------------------------------------------
# validation of the motivating example's formula (§III)
# ---------------------------------------------------------------------------

def check_fetch_bubble_formula(signals: Mapping[str, Sequence[int]]) -> int:
    """Count cycles violating
    ``FetchBubble == !Recovering & (!IBufValid & IBufReady)``.

    Returns the number of mismatching cycles (0 = the hardware event and
    the trace-derived definition agree everywhere).
    """
    bubbles = _series(signals, "fetch_bubbles")
    recovering = _series(signals, "recovering")
    valid = _series(signals, "ibuf_valid")
    ready = _series(signals, "ibuf_ready")
    cycles = min(len(bubbles), len(recovering), len(valid), len(ready))
    mismatches = 0
    for cycle in range(cycles):
        derived = (not recovering[cycle]) and (not valid[cycle]) \
            and bool(ready[cycle])
        if bool(bubbles[cycle]) != derived:
            mismatches += 1
    return mismatches


# ---------------------------------------------------------------------------
# ASCII rasters (Fig. 3 / Fig. 8a)
# ---------------------------------------------------------------------------

def render_raster(signals: Mapping[str, Sequence[int]],
                  names: Sequence[str], start: int, end: int,
                  step: int = 1) -> str:
    """Dot-plot a trace window: one row per signal, one column per cycle."""
    lines = [f"cycles {start}..{end} (step {step})"]
    label_width = max(len(name) for name in names) + 2
    for name in names:
        series = _series(signals, name)
        row = []
        for cycle in range(start, min(end, len(series)), step):
            row.append("*" if series[cycle] else ".")
        lines.append(f"{name:<{label_width}s}|{''.join(row)}|")
    return "\n".join(lines)


def find_first(signals: Mapping[str, Sequence[int]], name: str,
               after: int = 0) -> Optional[int]:
    """First cycle at/after *after* where *name* is asserted."""
    series = _series(signals, name)
    for cycle in range(after, len(series)):
        if series[cycle]:
            return cycle
    return None
