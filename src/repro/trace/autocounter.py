"""AutoCounter: annotation-driven out-of-band counters (FirePerf).

The paper's related work (§VI) positions Icicle against FirePerf's
AutoCounter, which "allows for annotating boolean signals and producing
counter values at the end of simulation".  This module reproduces that
tool on top of the same per-cycle signal stream the tracer sees: any
signal the cores emit can be annotated — including ones that are *not*
PMU events (e.g. Rocket's raw ``ibuf_valid``) — and read out either as
end-of-run totals or as periodic samples forming a time series.

Unlike the in-band PMU, AutoCounter needs no CSR programming and no
counter budget; like the paper says, it is an out-of-band evaluation
aid, not something software on the target could read.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class CounterAnnotation:
    """One annotated signal.

    ``reduce`` selects how multi-lane masks turn into an increment:
    ``"popcount"`` (events across lanes) or ``"or"`` (cycles where any
    lane is high).
    """

    signal: str
    label: str = ""
    reduce: str = "popcount"

    def __post_init__(self) -> None:
        if self.reduce not in ("popcount", "or"):
            raise ValueError(f"unknown reduce mode {self.reduce!r}")

    @property
    def name(self) -> str:
        return self.label or self.signal


@dataclass
class AutoCounterSample:
    """Cumulative counter values at one readout cycle."""

    cycle: int
    values: Dict[str, int]


class AutoCounter:
    """Observer implementing the AutoCounter workflow."""

    def __init__(self, annotations: Sequence[CounterAnnotation],
                 readout_interval: Optional[int] = None) -> None:
        if not annotations:
            raise ValueError("at least one annotation required")
        names = [annotation.name for annotation in annotations]
        if len(set(names)) != len(names):
            raise ValueError("duplicate annotation labels")
        if readout_interval is not None and readout_interval <= 0:
            raise ValueError("readout interval must be positive")
        self.annotations = list(annotations)
        self.readout_interval = readout_interval
        self._totals: Dict[str, int] = {name: 0 for name in names}
        self.samples: List[AutoCounterSample] = []
        self.cycles = 0

    def on_cycle(self, cycle: int, signals: Mapping[str, int]) -> None:
        self.cycles += 1
        for annotation in self.annotations:
            mask = signals.get(annotation.signal, 0)
            if not mask:
                continue
            if annotation.reduce == "popcount":
                self._totals[annotation.name] += mask.bit_count()
            else:
                self._totals[annotation.name] += 1
        if self.readout_interval is not None \
                and (cycle + 1) % self.readout_interval == 0:
            self.samples.append(
                AutoCounterSample(cycle, dict(self._totals)))

    def total(self, name: str) -> int:
        """End-of-simulation value of one annotated counter."""
        return self._totals[name]

    def totals(self) -> Dict[str, int]:
        return dict(self._totals)

    def rate(self, name: str) -> float:
        """Events per cycle over the whole run."""
        return self._totals[name] / self.cycles if self.cycles else 0.0

    def window_deltas(self, name: str) -> List[int]:
        """Per-readout-window increments (the time-series view)."""
        deltas = []
        previous = 0
        for sample in self.samples:
            deltas.append(sample.values[name] - previous)
            previous = sample.values[name]
        return deltas

    def to_csv(self) -> str:
        """Samples as CSV: cycle column plus one column per counter."""
        names = [annotation.name for annotation in self.annotations]
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["cycle"] + names)
        for sample in self.samples:
            writer.writerow([sample.cycle]
                            + [sample.values[name] for name in names])
        return out.getvalue()
