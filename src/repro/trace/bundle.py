"""TraceBundle: which signals a microarchitectural trace carries (§IV-C).

The paper's TracerV extension streams a chosen set of per-cycle signals
over the bridge; the host-side analyzer needs "a matching type definition
for each bit in the trace".  :class:`TraceBundle` is that type
definition: an ordered list of (signal name, bit width) pairs that both
the encoder and decoder share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple


@dataclass(frozen=True)
class TraceField:
    """One signal in the bundle: name plus its lane width in bits."""

    name: str
    width: int = 1

    def __post_init__(self) -> None:
        if self.width < 1 or self.width > 64:
            raise ValueError(f"field {self.name!r}: width must be 1..64")


class TraceBundle:
    """Ordered, fixed-layout set of traced signals."""

    def __init__(self, fields: Sequence[TraceField], name: str = "trace"):
        if not fields:
            raise ValueError("a trace bundle needs at least one field")
        names = [field.name for field in fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names in bundle")
        self.name = name
        self.fields: Tuple[TraceField, ...] = tuple(fields)
        self._offsets: Dict[str, Tuple[int, int]] = {}
        offset = 0
        for field in self.fields:
            self._offsets[field.name] = (offset, field.width)
            offset += field.width
        self.bits_per_cycle = offset
        self.bytes_per_cycle = (offset + 7) // 8

    def offset_of(self, name: str) -> Tuple[int, int]:
        """(bit offset, width) of *name* within a cycle record."""
        return self._offsets[name]

    def pack(self, signals: Dict[str, int]) -> int:
        """Pack one cycle's lane masks into a single integer record."""
        record = 0
        for field in self.fields:
            mask = signals.get(field.name, 0) & ((1 << field.width) - 1)
            offset, _ = self._offsets[field.name]
            record |= mask << offset
        return record

    def unpack(self, record: int) -> Dict[str, int]:
        """Inverse of :meth:`pack`."""
        signals: Dict[str, int] = {}
        for field in self.fields:
            offset, width = self._offsets[field.name]
            signals[field.name] = (record >> offset) & ((1 << width) - 1)
        return signals

    def __contains__(self, name: str) -> bool:
        return name in self._offsets

    def __len__(self) -> int:
        return len(self.fields)


def rocket_frontend_bundle() -> TraceBundle:
    """The six Fig. 3 frontend signals for Rocket."""
    return TraceBundle([
        TraceField("icache_miss"),
        TraceField("icache_blocked"),
        TraceField("ibuf_valid"),
        TraceField("ibuf_ready"),
        TraceField("recovering"),
        TraceField("fetch_bubbles"),
    ], name="rocket-frontend")


def rocket_tma_bundle() -> TraceBundle:
    """Everything the Rocket temporal-TMA model consumes."""
    return TraceBundle([
        TraceField("instr_retired"),
        TraceField("instr_issued"),
        TraceField("fetch_bubbles"),
        TraceField("recovering"),
        TraceField("icache_miss"),
        TraceField("icache_blocked"),
        TraceField("dcache_blocked"),
        TraceField("cobr_mispredict"),
        TraceField("ibuf_valid"),
        TraceField("ibuf_ready"),
    ], name="rocket-tma")


def boom_tma_bundle(commit_width: int = 3,
                    issue_width: int = 5) -> TraceBundle:
    """Everything the BOOM temporal-TMA model consumes (per-lane wide)."""
    return TraceBundle([
        TraceField("uops_retired", commit_width),
        TraceField("uops_issued", issue_width),
        TraceField("fetch_bubbles", commit_width),
        TraceField("dcache_blocked", commit_width),
        TraceField("recovering"),
        TraceField("icache_miss"),
        TraceField("icache_blocked"),
        TraceField("br_mispredict"),
        TraceField("cf_target_mispredict"),
        TraceField("flush"),
        TraceField("fence_retired"),
    ], name="boom-tma")
