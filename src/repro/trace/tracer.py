"""Per-cycle trace capture and the TracerV-style binary bridge (§IV-C).

:class:`CycleTracer` is a :class:`~repro.cores.base.SignalObserver` that
packs the bundle's signals every simulated cycle.  The paper streams
dynamic signals over a Target-to-Host bridge and PCIe as raw binary; here
the :class:`TraceBridge` produces the same artifact — a framed binary
byte stream — and :class:`DmaTraceReader` is the "custom DMA driver"
that reassembles it on the host side.

Binary format (little-endian):

- stream header: magic ``ICTR``, version u16, bits-per-cycle u16, then
  the bundle layout (field count u16, then per field: name length u8,
  name bytes, width u8);
- a sequence of chunks: magic ``CHNK``, first cycle u64, cycle count
  u32, payload (cycle count × bytes-per-cycle of packed records).
"""

from __future__ import annotations

import io
import struct
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from .bundle import TraceBundle, TraceField

_STREAM_MAGIC = b"ICTR"
_CHUNK_MAGIC = b"CHNK"
_VERSION = 1

DEFAULT_CHUNK_CYCLES = 4096


class CycleTracer:
    """Observer that records the bundle's signals every cycle."""

    def __init__(self, bundle: TraceBundle,
                 start_cycle: int = 0,
                 max_cycles: Optional[int] = None) -> None:
        self.bundle = bundle
        self.start_cycle = start_cycle
        self.max_cycles = max_cycles
        self.records: List[int] = []
        self.first_cycle: Optional[int] = None

    def on_cycle(self, cycle: int, signals: Mapping[str, int]) -> None:
        if cycle < self.start_cycle:
            return
        if self.max_cycles is not None \
                and len(self.records) >= self.max_cycles:
            return
        if self.first_cycle is None:
            self.first_cycle = cycle
        self.records.append(self.bundle.pack(dict(signals)))

    def __len__(self) -> int:
        return len(self.records)

    def signal(self, name: str) -> List[int]:
        """The full per-cycle series of one field (as lane masks)."""
        offset, width = self.bundle.offset_of(name)
        mask = (1 << width) - 1
        return [(record >> offset) & mask for record in self.records]


class TraceBridge:
    """Target-to-host bridge: frames the tracer's records into chunks."""

    def __init__(self, bundle: TraceBundle,
                 chunk_cycles: int = DEFAULT_CHUNK_CYCLES) -> None:
        self.bundle = bundle
        self.chunk_cycles = chunk_cycles

    def _header(self) -> bytes:
        out = io.BytesIO()
        out.write(_STREAM_MAGIC)
        out.write(struct.pack("<HH", _VERSION, self.bundle.bits_per_cycle))
        out.write(struct.pack("<H", len(self.bundle.fields)))
        for field in self.bundle.fields:
            name = field.name.encode("utf-8")
            out.write(struct.pack("<B", len(name)))
            out.write(name)
            out.write(struct.pack("<B", field.width))
        return out.getvalue()

    def encode(self, tracer: CycleTracer) -> bytes:
        """Serialize a finished trace into the bridge byte stream."""
        if tracer.bundle is not self.bundle \
                and tracer.bundle.fields != self.bundle.fields:
            raise ValueError("tracer bundle does not match bridge bundle")
        out = io.BytesIO()
        out.write(self._header())
        stride = self.bundle.bytes_per_cycle
        first = tracer.first_cycle or 0
        records = tracer.records
        for start in range(0, len(records), self.chunk_cycles):
            chunk = records[start:start + self.chunk_cycles]
            out.write(_CHUNK_MAGIC)
            out.write(struct.pack("<QI", first + start, len(chunk)))
            payload = bytearray(stride * len(chunk))
            for i, record in enumerate(chunk):
                payload[i * stride:(i + 1) * stride] = record.to_bytes(
                    stride, "little")
            out.write(payload)
        return out.getvalue()


class DmaTraceReader:
    """Host-side driver: parses the raw binary stream back into records."""

    def __init__(self, data: bytes) -> None:
        self._stream = io.BytesIO(data)
        self.bundle = self._read_header()

    def _read_header(self) -> TraceBundle:
        stream = self._stream
        magic = stream.read(4)
        if magic != _STREAM_MAGIC:
            raise ValueError(f"bad stream magic {magic!r}")
        version, bits = struct.unpack("<HH", stream.read(4))
        if version != _VERSION:
            raise ValueError(f"unsupported trace version {version}")
        (count,) = struct.unpack("<H", stream.read(2))
        fields = []
        for _ in range(count):
            (name_len,) = struct.unpack("<B", stream.read(1))
            name = stream.read(name_len).decode("utf-8")
            (width,) = struct.unpack("<B", stream.read(1))
            fields.append(TraceField(name, width))
        bundle = TraceBundle(fields, name="decoded")
        if bundle.bits_per_cycle != bits:
            raise ValueError("header bit count does not match layout")
        return bundle

    def chunks(self) -> Iterator[Tuple[int, List[int]]]:
        """Yield (first_cycle, records) per chunk."""
        stride = self.bundle.bytes_per_cycle
        stream = self._stream
        while True:
            magic = stream.read(4)
            if not magic:
                return
            if magic != _CHUNK_MAGIC:
                raise ValueError(f"bad chunk magic {magic!r}")
            first_cycle, count = struct.unpack("<QI", stream.read(12))
            payload = stream.read(stride * count)
            if len(payload) != stride * count:
                raise ValueError("truncated chunk payload")
            records = [int.from_bytes(payload[i * stride:(i + 1) * stride],
                                      "little")
                       for i in range(count)]
            yield first_cycle, records

    def read_all(self) -> Tuple[int, List[int]]:
        """Concatenate every chunk; returns (first_cycle, records)."""
        first: Optional[int] = None
        records: List[int] = []
        for chunk_first, chunk_records in self.chunks():
            if first is None:
                first = chunk_first
            records.extend(chunk_records)
        return first or 0, records

    def signals(self) -> Dict[str, List[int]]:
        """Decode the whole stream into per-signal series."""
        _, records = self.read_all()
        series: Dict[str, List[int]] = {
            field.name: [] for field in self.bundle.fields}
        for record in records:
            decoded = self.bundle.unpack(record)
            for name, value in decoded.items():
                series[name].append(value)
        return series


def capture_trace(core, trace, bundle: TraceBundle,
                  max_cycles: Optional[int] = None) -> CycleTracer:
    """Attach a tracer to *core*, run *trace*, and return the tracer."""
    tracer = CycleTracer(bundle, max_cycles=max_cycles)
    core.add_observer(tracer)
    core.run(trace)
    core.observers.remove(tracer)
    return tracer
