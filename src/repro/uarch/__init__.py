"""Shared microarchitecture substrates: caches, predictors, TLBs, queues."""

from .branch import (BHT, BTB, BimodalPredictor, BoomBranchPredictor,
                     DIRECTION_PREDICTORS, GsharePredictor, Prediction,
                     PredictorStats, ReturnAddressStack,
                     RocketBranchPredictor, TagePredictor,
                     make_direction_predictor)
from .buffers import ReadyValidQueue
from .cache import (Cache, CacheConfig, CacheStats, DRAM_LATENCY, L1D_16K,
                    L1D_32K, L1I_32K, L2_512K, MemorySystem, MSHRFile,
                    NonBlockingCache)
from .prefetch import PrefetchStats, StridePrefetcher
from .tlb import Tlb, TlbHierarchy, TlbStats

__all__ = [
    "BHT",
    "BTB",
    "BimodalPredictor",
    "BoomBranchPredictor",
    "DIRECTION_PREDICTORS",
    "GsharePredictor",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "DRAM_LATENCY",
    "L1D_16K",
    "L1D_32K",
    "L1I_32K",
    "L2_512K",
    "MSHRFile",
    "MemorySystem",
    "NonBlockingCache",
    "Prediction",
    "PredictorStats",
    "PrefetchStats",
    "StridePrefetcher",
    "ReadyValidQueue",
    "ReturnAddressStack",
    "RocketBranchPredictor",
    "TagePredictor",
    "Tlb",
    "make_direction_predictor",
    "TlbHierarchy",
    "TlbStats",
]
