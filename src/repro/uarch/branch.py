"""Branch prediction substrates for the two cores.

Rocket (Table IV): 512-entry 2-bit BHT + 28-entry BTB.  The frontend can
only redirect on a predicted-taken branch when the BTB knows the target,
so on a BTB miss the effective prediction is *not-taken* — this is what
makes the paper's ``brmiss`` chain (taken branches, BTB-thrashing) always
mispredict on Rocket while ``brmiss_inv`` always predicts correctly
(Rocket CS2, Fig. 7d).

BOOM (Table IV): TAGE + BTB.  The direction predictor's bimodal base
table initializes weakly-taken, and a predicted-taken *direct* branch
whose target misses in the BTB is recovered with a cheap decode-stage
resteer rather than an execute-stage flush.  The combination flips the
case study's outcome on BOOM (base chain ~0% Bad Speculation, inverted
chain slower — Fig. 7n), matching the paper's "the branch prediction
implementation is different" explanation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class PredictorStats:
    """Aggregate direction/target accuracy counters."""

    lookups: int = 0
    direction_mispredicts: int = 0
    target_mispredicts: int = 0

    @property
    def mispredicts(self) -> int:
        return self.direction_mispredicts + self.target_mispredicts

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


@dataclass
class Prediction:
    """Outcome of one frontend prediction."""

    taken: bool
    target: Optional[int]        # None when the BTB has no target
    btb_hit: bool
    provider: str = "base"       # which structure supplied the direction


class BHT:
    """Direct-mapped table of 2-bit saturating counters."""

    def __init__(self, entries: int, init: int = 1) -> None:
        if entries & (entries - 1):
            raise ValueError("BHT entries must be a power of two")
        self.entries = entries
        self._table = [init] * entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)


class BTB:
    """Small fully-associative branch target buffer with LRU replacement.

    Entries live in one insertion-ordered dict (LRU first, MRU last), so
    lookup/insert/evict are O(1); the BOOM configs carry 512 entries, so
    the previous list-based recency scan was a per-prediction hot spot.
    """

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._targets: dict = {}             # pc -> target, LRU first

    def lookup(self, pc: int) -> Optional[int]:
        targets = self._targets
        target = targets.get(pc)
        if target is not None:
            del targets[pc]                  # re-insert as MRU
            targets[pc] = target
        return target

    def insert(self, pc: int, target: int) -> None:
        targets = self._targets
        if pc in targets:
            del targets[pc]
        elif len(targets) >= self.entries:
            del targets[next(iter(targets))]   # evict LRU
        targets[pc] = target


class ReturnAddressStack:
    """Classic RAS for call/return target prediction."""

    def __init__(self, depth: int = 8) -> None:
        self.depth = depth
        self._stack: List[int] = []

    def push(self, addr: int) -> None:
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
        self._stack.append(addr)

    def pop(self) -> Optional[int]:
        return self._stack.pop() if self._stack else None

    def peek(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None


class RocketBranchPredictor:
    """BHT + BTB frontend predictor with a not-taken BTB-miss fallback."""

    def __init__(self, bht_entries: int = 512, btb_entries: int = 28) -> None:
        self.bht = BHT(bht_entries)
        self.btb = BTB(btb_entries)
        self.ras = ReturnAddressStack()
        self.stats = PredictorStats()

    def predict_branch(self, pc: int) -> Prediction:
        target = self.btb.lookup(pc)
        if target is None:
            # Without a target the frontend cannot redirect: the
            # effective prediction is fall-through.
            return Prediction(taken=False, target=None, btb_hit=False)
        return Prediction(taken=self.bht.predict(pc), target=target,
                          btb_hit=True)

    def resolve_branch(self, pc: int, taken: bool, target: int,
                       prediction: Prediction) -> bool:
        """Update state; return True when the branch was mispredicted."""
        self.stats.lookups += 1
        self.bht.update(pc, taken)
        if taken:
            self.btb.insert(pc, target)
        mispredicted = prediction.taken != taken
        if not mispredicted and taken and prediction.target != target:
            self.stats.target_mispredicts += 1
            return True
        if mispredicted:
            self.stats.direction_mispredicts += 1
        return mispredicted

    def predict_indirect(self, pc: int,
                         is_return: bool = False) -> Optional[int]:
        if is_return:
            predicted = self.ras.pop()
            if predicted is not None:
                return predicted
        return self.btb.lookup(pc)

    def resolve_indirect(self, pc: int, target: int,
                         predicted: Optional[int]) -> bool:
        self.stats.lookups += 1
        self.btb.insert(pc, target)
        if predicted != target:
            self.stats.target_mispredicts += 1
            return True
        return False


class _TageTable:
    """One tagged TAGE component."""

    __slots__ = ("entries", "history_length", "_tags", "_ctr", "_useful",
                 "_hist_mask", "_index_bits", "_index_mask", "_folds")

    #: Fold-pair memo bound; loopy traces revisit a few hundred masked
    #: histories, so the memo stays tiny — the cap only guards
    #: pathological history churn.
    _FOLD_CACHE_LIMIT = 1 << 16

    def __init__(self, entries: int, history_length: int) -> None:
        self.entries = entries
        self.history_length = history_length
        self._tags = [0] * entries
        self._ctr = [0] * entries      # signed -4..3, taken when >= 0
        self._useful = [0] * entries
        self._hist_mask = (1 << history_length) - 1
        self._index_bits = entries.bit_length() - 1
        self._index_mask = entries - 1
        # Masked history -> (index fold, tag fold).  Folding is a pure
        # function of the masked history, and index()/tag() are always
        # interrogated together, so one memo feeds both.
        self._folds: Dict[int, Tuple[int, int]] = {}

    def _fold_pair(self, history: int) -> Tuple[int, int]:
        history &= self._hist_mask
        pair = self._folds.get(history)
        if pair is None:
            bits = self._index_bits
            mask = (1 << bits) - 1
            idx_fold = 0
            h = history
            while h:
                idx_fold ^= h & mask
                h >>= bits
            tag_fold = 0
            h = history
            while h:
                tag_fold ^= h & 0xFF
                h >>= 8
            if len(self._folds) >= self._FOLD_CACHE_LIMIT:
                self._folds.clear()
            pair = (idx_fold, tag_fold)
            self._folds[history] = pair
        return pair

    def _fold(self, history: int, bits: int) -> int:
        history &= self._hist_mask
        folded = 0
        while history:
            folded ^= history & ((1 << bits) - 1)
            history >>= bits
        return folded

    def index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ self._fold_pair(history)[0]) & self._index_mask

    def tag(self, pc: int, history: int) -> int:
        return (((pc >> 2) ^ self._fold_pair(history)[1] ^ 0x55) & 0xFF) or 1

    def lookup(self, pc: int, history: int) -> Optional[bool]:
        idx_fold, tag_fold = self._fold_pair(history)
        idx = ((pc >> 2) ^ idx_fold) & self._index_mask
        if self._tags[idx] == ((((pc >> 2) ^ tag_fold ^ 0x55) & 0xFF) or 1):
            return self._ctr[idx] >= 0
        return None

    def update(self, pc: int, history: int, taken: bool) -> None:
        idx_fold, tag_fold = self._fold_pair(history)
        idx = ((pc >> 2) ^ idx_fold) & self._index_mask
        if self._tags[idx] == ((((pc >> 2) ^ tag_fold ^ 0x55) & 0xFF) or 1):
            delta = 1 if taken else -1
            self._ctr[idx] = max(-4, min(3, self._ctr[idx] + delta))

    def allocate(self, pc: int, history: int, taken: bool) -> bool:
        idx_fold, tag_fold = self._fold_pair(history)
        idx = ((pc >> 2) ^ idx_fold) & self._index_mask
        if self._useful[idx] > 0:
            self._useful[idx] -= 1
            return False
        self._tags[idx] = (((pc >> 2) ^ tag_fold ^ 0x55) & 0xFF) or 1
        self._ctr[idx] = 0 if taken else -1
        self._useful[idx] = 0
        return True

    def mark_useful(self, pc: int, history: int) -> None:
        idx_fold, tag_fold = self._fold_pair(history)
        idx = ((pc >> 2) ^ idx_fold) & self._index_mask
        if self._tags[idx] == ((((pc >> 2) ^ tag_fold ^ 0x55) & 0xFF) or 1):
            self._useful[idx] = min(3, self._useful[idx] + 1)


class TagePredictor:
    """TAGE direction predictor: bimodal base + tagged geometric tables."""

    HISTORY_LENGTHS = (8, 16, 32, 64)

    def __init__(self, bimodal_entries: int = 2048,
                 table_entries: int = 1024,
                 bimodal_init: int = 2) -> None:
        self.base = BHT(bimodal_entries, init=bimodal_init)
        self.tables = [_TageTable(table_entries, length)
                       for length in self.HISTORY_LENGTHS]
        self._provider_names = tuple(f"tage{length}"
                                     for length in self.HISTORY_LENGTHS)
        self.history = 0

    def predict(self, pc: int) -> Tuple[bool, str]:
        """Return (direction, provider_name)."""
        for i in range(len(self.tables) - 1, -1, -1):
            result = self.tables[i].lookup(pc, self.history)
            if result is not None:
                return result, self._provider_names[i]
        return self.base.predict(pc), "bimodal"

    def update(self, pc: int, taken: bool, provider: str,
               predicted: bool) -> None:
        provider_index = -1
        for i, name in enumerate(self._provider_names):
            if provider == name:
                provider_index = i
                break
        if provider_index >= 0:
            self.tables[provider_index].update(pc, self.history, taken)
            if predicted == taken:
                self.tables[provider_index].mark_useful(pc, self.history)
        else:
            self.base.update(pc, taken)
        if predicted != taken:
            # Allocate in one longer table, if any.
            for table in self.tables[provider_index + 1:]:
                if table.allocate(pc, self.history, taken):
                    break
        self.history = ((self.history << 1) | int(taken)) & ((1 << 64) - 1)


class GsharePredictor:
    """Classic gshare: global history XOR pc indexing a 2-bit table."""

    def __init__(self, entries: int = 4096, history_bits: int = 12,
                 init: int = 2) -> None:
        if entries & (entries - 1):
            raise ValueError("gshare entries must be a power of two")
        self.entries = entries
        self.history_bits = history_bits
        self._table = [init] * entries
        self.history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & (self.entries - 1)

    def predict(self, pc: int) -> Tuple[bool, str]:
        return self._table[self._index(pc)] >= 2, "gshare"

    def update(self, pc: int, taken: bool, provider: str,
               predicted: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        self._table[index] = min(3, counter + 1) if taken \
            else max(0, counter - 1)
        self.history = ((self.history << 1) | int(taken)) \
            & ((1 << self.history_bits) - 1)


class BimodalPredictor:
    """A bare 2-bit-counter table (the TAGE base, standalone)."""

    def __init__(self, entries: int = 2048, init: int = 2) -> None:
        self._bht = BHT(entries, init=init)

    def predict(self, pc: int) -> Tuple[bool, str]:
        return self._bht.predict(pc), "bimodal"

    def update(self, pc: int, taken: bool, provider: str,
               predicted: bool) -> None:
        self._bht.update(pc, taken)


DIRECTION_PREDICTORS = ("tage", "gshare", "bimodal")


def make_direction_predictor(kind: str, bimodal_init: int = 2):
    """Factory for BOOM's pluggable direction predictor."""
    if kind == "tage":
        return TagePredictor(bimodal_init=bimodal_init)
    if kind == "gshare":
        return GsharePredictor(init=bimodal_init)
    if kind == "bimodal":
        return BimodalPredictor(init=bimodal_init)
    raise ValueError(
        f"unknown direction predictor {kind!r}; "
        f"choose from {DIRECTION_PREDICTORS}")


class BoomBranchPredictor:
    """Direction predictor (TAGE by default) + BTB + RAS for BOOM."""

    def __init__(self, btb_entries: int = 512,
                 bimodal_init: int = 2,
                 direction: str = "tage") -> None:
        self.direction = make_direction_predictor(
            direction, bimodal_init=bimodal_init)
        self.tage = self.direction  # backwards-compatible alias
        self.btb = BTB(btb_entries)
        self.ras = ReturnAddressStack()
        self.stats = PredictorStats()
        self.decode_resteers = 0

    def predict_branch(self, pc: int) -> Prediction:
        taken, provider = self.direction.predict(pc)
        target = self.btb.lookup(pc)
        if taken and target is None:
            # Direct branch: decode computes the target, costing a short
            # frontend resteer rather than a pipeline flush.
            self.decode_resteers += 1
        return Prediction(taken=taken, target=target,
                          btb_hit=target is not None, provider=provider)

    def resolve_branch(self, pc: int, taken: bool, target: int,
                       prediction: Prediction) -> bool:
        self.stats.lookups += 1
        self.direction.update(pc, taken, prediction.provider,
                              prediction.taken)
        if taken:
            self.btb.insert(pc, target)
        if prediction.taken != taken:
            self.stats.direction_mispredicts += 1
            return True
        return False

    def predict_indirect(self, pc: int, is_return: bool = False
                         ) -> Optional[int]:
        if is_return:
            predicted = self.ras.pop()
            if predicted is not None:
                return predicted
        return self.btb.lookup(pc)

    def resolve_indirect(self, pc: int, target: int,
                         predicted: Optional[int]) -> bool:
        self.stats.lookups += 1
        self.btb.insert(pc, target)
        if predicted != target:
            self.stats.target_mispredicts += 1
            return True
        return False


def share_fold_caches(predictors) -> int:
    """Share TAGE history-fold memos across same-geometry tables.

    ``_TageTable._fold_pair`` memoizes a *pure* function of the masked
    global history — ``history -> (index fold, tag fold)`` depends only
    on the table geometry ``(entries, history_length)``, never on the
    table's contents or on which core is asking.  When a batched grid
    run instantiates N predictors, each same-geometry table can
    therefore adopt a single shared memo dict: one config's fold work
    warms every other config's tables, and because the memo is pure
    (and a capacity flush only ever costs recomputation), sharing is
    bit-identity-safe.

    *predictors* is an iterable of branch predictors (or ``None``);
    anything without a TAGE direction predictor is skipped.  Returns
    the number of tables that adopted another table's memo.
    """
    donors: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = {}
    shared = 0
    for predictor in predictors:
        direction = getattr(predictor, "direction", None)
        tables = getattr(direction, "tables", None)
        if not tables:
            continue
        for table in tables:
            key = (table.entries, table.history_length)
            donor = donors.get(key)
            if donor is None:
                donors[key] = table._folds
            else:
                table._folds = donor
                shared += 1
    return shared
