"""Ready/valid queues used inside the core frontends.

The motivating example (§III, Fig. 3) is built on the ready/valid
handshake between Rocket's instruction buffer and its decode stage; BOOM
has an I-mem response buffer and a Fetch Buffer in the same position
(Fig. 2).  :class:`ReadyValidQueue` models a fixed-capacity FIFO exposing
exactly the two signals the paper taps: ``valid`` (the queue has data for
the consumer) and ``ready`` (the consumer-side stage can accept data).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

T = TypeVar("T")


class ReadyValidQueue(Generic[T]):
    """Fixed-capacity FIFO with ready/valid accounting."""

    def __init__(self, capacity: int, name: str = "queue") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()

    # -- producer side --------------------------------------------------

    @property
    def producer_ready(self) -> bool:
        """True when the queue can accept another item this cycle."""
        return len(self._items) < self.capacity

    def push(self, item: T) -> bool:
        """Enqueue; returns False (drop) when full."""
        if not self.producer_ready:
            return False
        self._items.append(item)
        return True

    def free_slots(self) -> int:
        return self.capacity - len(self._items)

    # -- consumer side ---------------------------------------------------

    @property
    def valid(self) -> bool:
        """True when the consumer can take an item this cycle."""
        return bool(self._items)

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    def pop(self) -> T:
        return self._items.popleft()

    def pop_up_to(self, count: int) -> List[T]:
        """Dequeue at most *count* items, preserving order."""
        taken: List[T] = []
        while self._items and len(taken) < count:
            taken.append(self._items.popleft())
        return taken

    def clear(self) -> None:
        """Flush the queue (pipeline flush)."""
        self._items.clear()

    @property
    def occupancy(self) -> int:
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:  # queue object is always truthy
        return True
