"""Set-associative caches, MSHR files, and the memory hierarchy.

The hierarchy matches Table IV's common configuration: split 32 KiB 8-way
L1 I/D caches with 64 B blocks over a shared 512 KiB 8-way L2, no LLC,
and a fixed-latency DRAM model standing in for FASED.

Two access styles are provided because the two cores differ:

- Rocket's caches are *blocking*: :meth:`Cache.access` returns the cycle
  at which the data is available and the core stalls until then.
- BOOM's D-cache is *non-blocking*: misses allocate entries in an
  :class:`MSHRFile`; secondary misses to an in-flight block merge; the
  number of busy MSHRs is exported because the paper's new ``D$-blocked``
  event tests "at least one MSHR is currently handling a cache miss".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    block_bytes: int = 64
    hit_latency: int = 1

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.block_bytes)
        if sets <= 0:
            raise ValueError(f"{self.name}: size too small for geometry")
        return sets


# Table IV common configuration.
L1I_32K = CacheConfig("L1I", 32 * 1024, 8, 64, hit_latency=1)
L1D_32K = CacheConfig("L1D", 32 * 1024, 8, 64, hit_latency=2)
L1D_16K = CacheConfig("L1D", 16 * 1024, 8, 64, hit_latency=2)
L2_512K = CacheConfig("L2", 512 * 1024, 8, 64, hit_latency=14)

#: DRAM round-trip latency in core cycles (3.2 GHz core over FASED@1GHz).
DRAM_LATENCY = 80

#: Minimum core-cycle spacing between DRAM block transfers (the bus
#: occupancy of one 64 B line at ~4 B/cycle effective bandwidth).  This
#: is what makes streaming kernels bandwidth-bound rather than purely
#: MSHR-bound.
DRAM_BLOCK_GAP = 16


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig,
                 next_level: Optional["Cache"] = None,
                 next_latency: int = DRAM_LATENCY,
                 bus_gap: int = 0) -> None:
        self.config = config
        self.next_level = next_level
        #: latency charged when this level misses and there is no
        #: modelled next level (i.e. DRAM).
        self.next_latency = next_latency
        #: Minimum cycle spacing between misses served below this level
        #: (models DRAM bandwidth when set on the last level).
        self.bus_gap = bus_gap
        self._bus_free = 0
        self.stats = CacheStats()
        #: Optional per-requestor breakdown of :attr:`stats`, populated
        #: lazily and only for accesses that pass ``requestor=``.  The
        #: common single-agent path never touches it.
        self.requestor_stats: Dict[Hashable, CacheStats] = {}
        num_sets = config.num_sets
        self._set_shift = config.block_bytes.bit_length() - 1
        self._set_mask = num_sets - 1
        # Each set is an ordered list of block tags, MRU first.
        self._sets: List[List[int]] = [[] for _ in range(num_sets)]
        self._dirty: List[Dict[int, bool]] = [{} for _ in range(num_sets)]

    def _index(self, addr: int) -> Tuple[int, int]:
        block = addr >> self._set_shift
        return block & self._set_mask, block

    def lookup(self, addr: int) -> bool:
        """Probe without updating stats or LRU (used by tests/prefetch)."""
        set_index, tag = self._index(addr)
        return tag in self._sets[set_index]

    def per_requestor(self, requestor: Hashable) -> CacheStats:
        """Per-requestor slice of :attr:`stats` (created on first use)."""
        stats = self.requestor_stats.get(requestor)
        if stats is None:
            stats = self.requestor_stats[requestor] = CacheStats()
        return stats

    def access(self, addr: int, is_store: bool = False,
               cycle: Optional[int] = None,
               requestor: Optional[Hashable] = None) -> Tuple[bool, int]:
        """Access *addr*; return ``(hit_at_this_level, total_latency)``.

        Misses recursively access the next level (or DRAM) and install
        the block here, evicting LRU.  When *cycle* is supplied, misses
        below a bandwidth-limited level are spaced by ``bus_gap`` cycles
        (DRAM bandwidth); without it only latency is modelled.  When
        *requestor* is supplied the access is additionally attributed to
        that requestor's :class:`CacheStats` (writebacks count against
        the requestor whose miss triggered the eviction).
        """
        self.stats.accesses += 1
        rstats = None
        if requestor is not None:
            rstats = self.per_requestor(requestor)
            rstats.accesses += 1
        set_index, tag = self._index(addr)
        blocks = self._sets[set_index]
        if tag in blocks:
            blocks.remove(tag)
            blocks.insert(0, tag)
            if is_store:
                self._dirty[set_index][tag] = True
            return True, self.config.hit_latency

        self.stats.misses += 1
        if rstats is not None:
            rstats.misses += 1
        if self.next_level is not None:
            below_cycle = None if cycle is None \
                else cycle + self.config.hit_latency
            _, below = self.next_level.access(addr, is_store=False,
                                              cycle=below_cycle)
        else:
            below = self.next_latency
        total = self.config.hit_latency + below
        if self.bus_gap and self.next_level is None:
            if cycle is not None:
                arrival = max(cycle + total, self._bus_free + self.bus_gap)
                self._bus_free = arrival
                total = arrival - cycle
            else:
                # Blocking callers serialize anyway; advance the bus so
                # concurrent agents (e.g. the I-cache) still contend.
                self._bus_free += self.bus_gap
        self._install(set_index, tag, is_store, requestor=requestor)
        return False, total

    def _install(self, set_index: int, tag: int, is_store: bool,
                 requestor: Optional[Hashable] = None) -> None:
        blocks = self._sets[set_index]
        if len(blocks) >= self.config.ways:
            victim = blocks.pop()
            if self._dirty[set_index].pop(victim, False):
                self.stats.writebacks += 1
                if requestor is not None:
                    self.per_requestor(requestor).writebacks += 1
        blocks.insert(0, tag)
        if is_store:
            self._dirty[set_index][tag] = True

    def flush(self) -> None:
        """Invalidate all blocks (used by fence.i for the I-cache)."""
        for blocks in self._sets:
            blocks.clear()
        for dirty in self._dirty:
            dirty.clear()

    def block_address(self, addr: int) -> int:
        """Return the block-aligned address containing *addr*."""
        return (addr >> self._set_shift) << self._set_shift


class MSHR:
    """One miss-status holding register."""

    __slots__ = ("block", "ready_cycle")

    def __init__(self, block: int, ready_cycle: int) -> None:
        self.block = block
        self.ready_cycle = ready_cycle


class MSHRFile:
    """Miss-status holding registers for a non-blocking cache.

    Tracks in-flight refills so the core model can (a) merge secondary
    misses, (b) back-pressure when full, and (c) expose "refill in
    progress", which the paper's I$-blocked and D$-blocked heuristics
    test.
    """

    def __init__(self, num_entries: int) -> None:
        self.num_entries = num_entries
        self._entries: Dict[int, MSHR] = {}
        # Largest ready_cycle among current entries (0 when empty).  If
        # the watermark entry is ever reapable, every entry is (all
        # readies <= max <= cycle), so the file empties and the
        # watermark resets — the invariant survives without rescans.
        self._max_ready = 0
        # Smallest ready_cycle among current entries (huge when empty):
        # lets _reap bail out without scanning when nothing is due.
        self._min_ready = 1 << 62
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0

    def busy(self, cycle: int) -> int:
        """Number of MSHRs still handling a miss at *cycle*."""
        return sum(1 for e in self._entries.values()
                   if e.ready_cycle > cycle)

    def refill_in_flight(self, cycle: int) -> bool:
        """True when at least one refill is outstanding at *cycle*."""
        return self._max_ready > cycle

    def is_full(self, cycle: int) -> bool:
        if len(self._entries) < self.num_entries:
            return False
        self._reap(cycle)
        return len(self._entries) >= self.num_entries

    def lookup(self, block: int) -> Optional[MSHR]:
        return self._entries.get(block)

    def allocate(self, block: int, ready_cycle: int,
                 cycle: int) -> Optional[MSHR]:
        """Allocate (or merge into) an MSHR for *block*.

        Returns the MSHR, or None when the file is full (the caller must
        retry later — a structural stall).
        """
        existing = self._entries.get(block)
        if existing is not None and existing.ready_cycle > cycle:
            self.merges += 1
            return existing
        self._reap(cycle)
        if len(self._entries) >= self.num_entries:
            self.full_stalls += 1
            return None
        entry = MSHR(block, ready_cycle)
        self._entries[block] = entry
        if ready_cycle > self._max_ready:
            self._max_ready = ready_cycle
        if ready_cycle < self._min_ready:
            self._min_ready = ready_cycle
        self.allocations += 1
        return entry

    def _reap(self, cycle: int) -> None:
        if self._min_ready > cycle:
            return
        done = [b for b, e in self._entries.items() if e.ready_cycle <= cycle]
        for block in done:
            del self._entries[block]
        if not self._entries:
            self._max_ready = 0
            self._min_ready = 1 << 62
        else:
            self._min_ready = min(e.ready_cycle
                                  for e in self._entries.values())


class NonBlockingCache:
    """L1 cache front for BOOM: hits are pipelined, misses go via MSHRs."""

    def __init__(self, config: CacheConfig, mshrs: int,
                 next_level: Optional[Cache] = None,
                 next_latency: int = DRAM_LATENCY) -> None:
        self.cache = Cache(config, next_level=next_level,
                           next_latency=next_latency)
        self.mshrs = MSHRFile(mshrs)

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def access(self, addr: int, cycle: int,
               is_store: bool = False,
               requestor: Optional[Hashable] = None) -> Tuple[bool, int]:
        """Access at *cycle*; return ``(hit, data_ready_cycle)``."""
        hit, ready, _ = self.access_ex(addr, cycle, is_store=is_store,
                                       requestor=requestor)
        return hit, ready

    def access_ex(self, addr: int, cycle: int,
                  is_store: bool = False,
                  requestor: Optional[Hashable] = None,
                  ) -> Tuple[bool, int, bool]:
        """Access at *cycle*; return ``(hit, ready_cycle, primary_miss)``.

        A miss allocates/merges an MSHR; merged secondary misses report
        ``primary_miss=False`` (they must not re-count the miss event).
        If the MSHR file is full the access could not even start: the
        returned ready cycle is the earliest retry time.
        """
        block = self.cache.block_address(addr)
        in_flight = self.mshrs.lookup(block)
        if in_flight is not None and in_flight.ready_cycle > cycle:
            # Secondary miss: merge, data arrives with the refill.
            self.cache.stats.accesses += 1
            if requestor is not None:
                self.cache.per_requestor(requestor).accesses += 1
            self.mshrs.merges += 1
            return False, in_flight.ready_cycle, False
        hit, latency = self.cache.access(addr, is_store=is_store,
                                         cycle=cycle, requestor=requestor)
        if hit:
            return True, cycle + latency, False
        ready = cycle + latency
        entry = self.mshrs.allocate(block, ready, cycle)
        if entry is None:
            # Structural stall: retry when the oldest MSHR frees.
            earliest = min(e.ready_cycle
                           for e in self.mshrs._entries.values())
            return False, max(ready, earliest + 1), True
        return False, entry.ready_cycle, True


@dataclass
class MemorySystem:
    """The shared cache hierarchy handed to a core model."""

    l1i: Cache
    l1d_config: CacheConfig
    l2: Cache
    dram_latency: int = DRAM_LATENCY

    @staticmethod
    def build(l1d_config: CacheConfig = L1D_32K,
              l1i_config: CacheConfig = L1I_32K,
              l2_config: CacheConfig = L2_512K,
              dram_latency: int = DRAM_LATENCY,
              dram_block_gap: int = DRAM_BLOCK_GAP) -> "MemorySystem":
        """Construct the Table IV hierarchy (parameterizable for CS1)."""
        l2 = Cache(l2_config, next_level=None, next_latency=dram_latency,
                   bus_gap=dram_block_gap)
        l1i = Cache(l1i_config, next_level=l2)
        return MemorySystem(l1i=l1i, l1d_config=l1d_config, l2=l2,
                            dram_latency=dram_latency)

    def blocking_l1d(self) -> Cache:
        """A blocking L1D for Rocket."""
        return Cache(self.l1d_config, next_level=self.l2)

    def nonblocking_l1d(self, mshrs: int) -> NonBlockingCache:
        """A non-blocking L1D with *mshrs* MSHRs for BOOM."""
        return NonBlockingCache(self.l1d_config, mshrs, next_level=self.l2)
