"""Stride data prefetcher (an optional BOOM L1D extension).

The paper's introduction lists data prefetching as the canonical remedy
for Memory-Bound workloads; wiring a prefetcher into the model lets the
evaluation show TMA *responding* to that remedy (MemBound shrinking on
streaming kernels) — the same sensitivity argument as the paper's case
studies, one level deeper in the hierarchy.

The design is the classic per-PC stride table: each load PC trains an
entry with its last address and observed stride; once the same stride
repeats (confidence saturates), the prefetcher issues refills a
configurable distance ahead of the demand stream.  Prefetches go through
the normal MSHR path, so they consume real MSHR slots and DRAM
bandwidth — a prefetcher cannot beat the bandwidth wall, only hide
latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Confidence threshold before a trained stride issues prefetches.
CONFIDENCE_THRESHOLD = 2


@dataclass
class _StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0


@dataclass
class PrefetchStats:
    """Issued/dropped accounting for one prefetcher."""

    trained: int = 0
    issued: int = 0
    useless: int = 0        # target already resident
    dropped_no_mshr: int = 0


class StridePrefetcher:
    """Per-PC stride prefetcher feeding a non-blocking cache."""

    def __init__(self, entries: int = 16, degree: int = 2,
                 distance: int = 2) -> None:
        if entries <= 0 or degree <= 0 or distance <= 0:
            raise ValueError("entries, degree and distance must be > 0")
        self.entries = entries
        self.degree = degree
        self.distance = distance
        self.stats = PrefetchStats()
        self._table: Dict[int, _StrideEntry] = {}
        self._order: List[int] = []   # LRU of pcs

    def _touch(self, pc: int) -> None:
        if pc in self._order:
            self._order.remove(pc)
        elif len(self._order) >= self.entries:
            victim = self._order.pop()
            del self._table[victim]
        self._order.insert(0, pc)

    def train(self, pc: int, addr: int) -> List[int]:
        """Observe a demand load; return the prefetch addresses to issue."""
        entry = self._table.get(pc)
        self._touch(pc)
        if entry is None:
            self._table[pc] = _StrideEntry(last_addr=addr)
            return []
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(CONFIDENCE_THRESHOLD + 2,
                                   entry.confidence + 1)
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_addr = addr
        if entry.confidence < CONFIDENCE_THRESHOLD or entry.stride == 0:
            return []
        self.stats.trained += 1
        return [addr + entry.stride * (self.distance + k)
                for k in range(self.degree)]

    def issue(self, cache, addresses: List[int], cycle: int) -> None:
        """Issue prefetches through the cache's normal MSHR path."""
        for addr in addresses:
            if cache.cache.lookup(addr):
                self.stats.useless += 1
                continue
            if cache.mshrs.is_full(cycle):
                self.stats.dropped_no_mshr += 1
                continue
            cache.access(addr, cycle)
            self.stats.issued += 1
