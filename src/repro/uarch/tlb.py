"""TLB models (ITLB, DTLB, shared L2 TLB).

The paper counts ITLB/DTLB/L2-TLB miss events (Table I, Memory set) but
explicitly leaves TLB effects out of the TMA hierarchy ("we leave for
future work", §IV-A).  We model the structures anyway so the events exist
and carry realistic values: misses walk the (flat, always-resident) page
table with a fixed latency, going through the L2 TLB first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

PAGE_SHIFT = 12

#: Page-table-walk latency charged on an L2 TLB miss, in cycles.
PTW_LATENCY = 30
#: Latency of an L1 TLB miss that hits the L2 TLB.
L2_TLB_HIT_LATENCY = 4


@dataclass
class TlbStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Tlb:
    """Fully-associative TLB with LRU replacement.

    The entry set is an insertion-ordered dict (LRU first, MRU last):
    hit, refill, and eviction are all O(1), where the previous MRU-first
    list paid an O(entries) scan per translation — measurable, since the
    core models translate on every fetch packet and memory access.
    """

    def __init__(self, entries: int, name: str = "tlb") -> None:
        self.entries = entries
        self.name = name
        self.stats = TlbStats()
        self._order: Dict[int, None] = {}   # vpn -> None, LRU first

    def access(self, addr: int) -> bool:
        """Translate *addr*; return True on hit, inserting on miss."""
        vpn = addr >> PAGE_SHIFT
        order = self._order
        self.stats.accesses += 1
        if vpn in order:
            del order[vpn]       # re-insert as MRU
            order[vpn] = None
            return True
        self.stats.misses += 1
        if len(order) >= self.entries:
            del order[next(iter(order))]   # evict LRU
        order[vpn] = None
        return False

    def flush(self) -> None:
        self._order.clear()


class TlbHierarchy:
    """Split L1 TLBs over a shared L2 TLB, as in Rocket/BOOM."""

    def __init__(self, itlb_entries: int = 32, dtlb_entries: int = 32,
                 l2_entries: int = 512) -> None:
        self.itlb = Tlb(itlb_entries, "itlb")
        self.dtlb = Tlb(dtlb_entries, "dtlb")
        self.l2 = Tlb(l2_entries, "l2tlb")

    def _access(self, l1: Tlb, addr: int) -> Tuple[bool, int]:
        if l1.access(addr):
            return True, 0
        if self.l2.access(addr):
            return False, L2_TLB_HIT_LATENCY
        return False, PTW_LATENCY

    def access_instruction(self, addr: int) -> Tuple[bool, int]:
        """ITLB access; return (l1_hit, extra_latency)."""
        return self._access(self.itlb, addr)

    def access_data(self, addr: int) -> Tuple[bool, int]:
        """DTLB access; return (l1_hit, extra_latency)."""
        return self._access(self.dtlb, addr)
