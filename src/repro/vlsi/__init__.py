"""Physical-design overhead model (the §V-C substitution)."""

from .area import (FLOP_BIT_AREA, GATE_AREA, MEM_BIT_AREA, ModuleArea,
                   area_by_name, tile_area, tile_modules)
from .floorplan import EVENT_SOURCE_MODULE, Floorplan, Placement, floorplan
from .flow import (ARCHITECTURES, CLOCK_PERIOD_NS, ArchStructure,
                   EventSourceGroup, FlowResult, PhysicalFlow,
                   event_source_groups, paper_calibration,
                   single_lane_wire_reduction, structure_for, sweep)

__all__ = [
    "ARCHITECTURES",
    "ArchStructure",
    "CLOCK_PERIOD_NS",
    "EVENT_SOURCE_MODULE",
    "EventSourceGroup",
    "FLOP_BIT_AREA",
    "Floorplan",
    "FlowResult",
    "GATE_AREA",
    "MEM_BIT_AREA",
    "ModuleArea",
    "PhysicalFlow",
    "Placement",
    "area_by_name",
    "event_source_groups",
    "floorplan",
    "paper_calibration",
    "single_lane_wire_reduction",
    "structure_for",
    "sweep",
    "tile_area",
    "tile_modules",
]
