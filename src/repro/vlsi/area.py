"""Analytical area model for the BOOM tile (the §V-C substitution).

The paper pushes each BOOM size through a Cadence flow on ASAP7; we
replace that with an analytical model: every pipeline module gets an
area estimate derived from its configuration parameters, using
flop/SRAM-bit constants in the right ballpark for a 7 nm-class node.
As the paper notes, no ASAP7 memory compiler was available, so *all
memories unroll into register arrays* — we model exactly that (SRAM
bits cost flop-like area), which is also why the caches and TAGE tables
dominate the tile.

Absolute µm² values are a calibrated model, not a synthesis result; the
evaluation only relies on *relative* overheads and trends, which come
from structural counts (see :mod:`repro.vlsi.flow`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..cores.base import BoomConfig

#: µm² per flip-flop bit (ASAP7-class, incl. local routing overhead).
FLOP_BIT_AREA = 2.0
#: µm² per unrolled-memory bit (slightly denser than a generic flop).
MEM_BIT_AREA = 1.4
#: µm² per gate-equivalent of combinational logic.
GATE_AREA = 0.6

#: TAGE storage per Table IV: 14+14+28+28+28 KiB.
TAGE_BITS = (14 + 14 + 28 + 28 + 28) * 1024 * 8


@dataclass(frozen=True)
class ModuleArea:
    """One floorplanned module: name and area in µm²."""

    name: str
    area: float


def tile_modules(config: BoomConfig) -> List[ModuleArea]:
    """Per-module area estimates for one BOOM size.

    The module list matches the event-source map of Fig. 2b: frontend
    (I$ + predictor + fetch buffer), decode/rename, the three issue
    queues, execution units, LSU + D$, ROB, and the CSR file that hosts
    the PMU counters.
    """
    w_c = config.decode_width
    l1_bits = 32 * 1024 * 8

    frontend = (l1_bits * MEM_BIT_AREA                 # unrolled L1I
                + TAGE_BITS * MEM_BIT_AREA * 0.5       # TAGE + BTB
                + config.btb_entries * 60 * FLOP_BIT_AREA
                + config.fetch_buffer_size * 40 * FLOP_BIT_AREA
                + config.fetch_width * 2500 * GATE_AREA)
    decode = w_c * (9000 * GATE_AREA + 300 * FLOP_BIT_AREA)
    iq_int = config.iq_int * 90 * FLOP_BIT_AREA \
        + config.issue_int * 4000 * GATE_AREA
    iq_mem = config.iq_mem * 90 * FLOP_BIT_AREA \
        + config.issue_mem * 4000 * GATE_AREA
    iq_fp = config.iq_fp * 100 * FLOP_BIT_AREA \
        + config.issue_fp * 4000 * GATE_AREA
    execute = (config.issue_int * 14000 + config.issue_mem * 9000
               + config.issue_fp * 30000) * GATE_AREA \
        + (128 + config.rob_entries) * 64 * FLOP_BIT_AREA  # PRF
    lsu = (l1_bits * MEM_BIT_AREA                      # unrolled L1D
           + (config.ldq_entries + config.stq_entries) * 90 * FLOP_BIT_AREA
           + config.mshrs * 600 * GATE_AREA)
    rob = config.rob_entries * 45 * FLOP_BIT_AREA \
        + w_c * 3000 * GATE_AREA
    csr = 31 * 64 * FLOP_BIT_AREA + 9000 * GATE_AREA

    return [
        ModuleArea("frontend", frontend),
        ModuleArea("decode", decode),
        ModuleArea("iq_int", iq_int),
        ModuleArea("iq_mem", iq_mem),
        ModuleArea("iq_fp", iq_fp),
        ModuleArea("execute", execute),
        ModuleArea("lsu", lsu),
        ModuleArea("rob", rob),
        ModuleArea("csr", csr),
    ]


def tile_area(config: BoomConfig) -> float:
    """Total tile area in µm²."""
    return sum(module.area for module in tile_modules(config))


def area_by_name(config: BoomConfig) -> Dict[str, float]:
    return {module.name: module.area for module in tile_modules(config)}
