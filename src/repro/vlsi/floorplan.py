"""Slicing floorplan: place the tile's modules on a square die.

Models the behaviour the paper observed in the place-and-route tools:
modules are packed by recursive area bisection, and the CSR file — which
talks to *everything* — lands near the centre of the die, minimizing its
aggregate wire cost.  Wire lengths between modules are half-perimeter
(HPWL) distances between module centres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..cores.base import BoomConfig
from .area import ModuleArea, tile_modules


@dataclass(frozen=True)
class Placement:
    """One placed module: bounding box in µm."""

    name: str
    x: float
    y: float
    width: float
    height: float

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)


class Floorplan:
    """A placed tile."""

    def __init__(self, placements: Sequence[Placement],
                 die_width: float, die_height: float) -> None:
        self.placements = {p.name: p for p in placements}
        self.die_width = die_width
        self.die_height = die_height

    def center_of(self, module: str) -> Tuple[float, float]:
        return self.placements[module].center

    def distance(self, module_a: str, module_b: str) -> float:
        """HPWL (manhattan) distance between two module centres, µm."""
        ax, ay = self.center_of(module_a)
        bx, by = self.center_of(module_b)
        return abs(ax - bx) + abs(ay - by)

    @property
    def die_area(self) -> float:
        return self.die_width * self.die_height


def _slice(modules: List[ModuleArea], x: float, y: float, width: float,
           height: float, out: List[Placement]) -> None:
    """Recursive area-bisection slicing placement."""
    if len(modules) == 1:
        out.append(Placement(modules[0].name, x, y, width, height))
        return
    total = sum(m.area for m in modules)
    # Split the list into two halves of (nearly) equal area.
    running = 0.0
    split = 1
    for index, module in enumerate(modules[:-1], start=1):
        running += module.area
        split = index
        if running >= total / 2.0:
            break
    left, right = modules[:split], modules[split:]
    left_area = sum(m.area for m in left)
    ratio = left_area / total if total else 0.5
    if width >= height:
        _slice(left, x, y, width * ratio, height, out)
        _slice(right, x + width * ratio, y, width * (1 - ratio), height, out)
    else:
        _slice(left, x, y, width, height * ratio, out)
        _slice(right, x, y + height * ratio, width, height * (1 - ratio),
               out)


def floorplan(config: BoomConfig, utilization: float = 0.7) -> Floorplan:
    """Place a BOOM tile.

    Modules are ordered so the CSR file sits mid-list, which the slicing
    recursion places near the die centre — matching the P&R behaviour
    the paper describes (§IV-B).
    """
    modules = tile_modules(config)
    by_name = {m.name: m for m in modules}
    # Interleave big consumers around the CSR file.
    order = ["frontend", "decode", "iq_int", "iq_mem", "csr", "iq_fp",
             "rob", "execute", "lsu"]
    ordered = [by_name[name] for name in order]
    total = sum(m.area for m in ordered) / utilization
    side = math.sqrt(total)
    out: List[Placement] = []
    _slice(ordered, 0.0, 0.0, side, side, out)
    return Floorplan(out, side, side)


#: Which floorplan module hosts each per-lane TMA event source (Fig. 2b).
EVENT_SOURCE_MODULE: Dict[str, str] = {
    "fetch_bubbles": "decode",
    "uops_issued": "iq_int",      # spread across queues; see flow.py
    "uops_retired": "rob",
    "dcache_blocked": "lsu",
    "icache_blocked": "frontend",
    "recovering": "frontend",
    "fence_retired": "rob",
}
