"""The "physical design flow" driver: overheads per size × counter arch.

Replaces the paper's Cadence/ASAP7 runs (§V-C) with a structural model:
every counter architecture is expanded into the flip-flops, gates, and
wires it actually adds on top of the floorplanned tile, and power /
area / wirelength / CSR-path-delay overheads are computed from those
counts.

Absolute technology constants cannot be derived without a real PDK, so
each overhead metric carries a single global *calibration factor* chosen
such that the worst case across all five BOOM sizes and three counter
architectures matches the ceiling the paper reports (power +4.15%, area
+1.54%, wirelength +9.93%); the *relative* ordering across sizes and
architectures — the content of Fig. 9 — comes entirely from the
structural model.  All configurations must close timing at 200 MHz
(5 ns), like the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cores.base import BoomConfig
from ..cores.configs import ALL_BOOM_CONFIGS
from .area import FLOP_BIT_AREA, GATE_AREA, tile_area
from .floorplan import Floorplan, floorplan

ARCHITECTURES = ("baseline", "scalar", "adders", "distributed")

# Technology-ish constants (7 nm-class ballpark; relative use only).
WIRE_DELAY_PER_MM_NS = 0.28     # buffered global wire
# Each Chisel-emitted chain stage is a full-width add of the running
# sum ("compiled into a sequential chain to aggregate events", §IV-B).
ADDER_STAGE_DELAY_NS = 0.12
MUX_STAGE_DELAY_NS = 0.02
# Fixed cost of the rotating one-hot arbiter + clear-on-read flag logic
# in front of the principal counter: this is the "circuit overhead of
# distributed counters [that] outweighs its scalability" at small sizes.
DISTRIBUTED_ARBITER_DELAY_NS = 0.36
LOCAL_PITCH_UM = 15.0           # spacing between lanes inside a module
FLOP_POWER_UW = 0.55            # per bit at full activity
WIRE_POWER_UW_PER_MM = 10.0     # per bit toggling
GATE_POWER_UW = 0.06
BASE_POWER_DENSITY_UW_PER_UM2 = 0.085
CLOCK_PERIOD_NS = 5.0           # 200 MHz target

#: The paper's reported worst-case overheads (the calibration targets).
PAPER_POWER_CEILING = 0.0415
PAPER_AREA_CEILING = 0.0154
PAPER_WIRELENGTH_CEILING = 0.0993


@dataclass(frozen=True)
class EventSourceGroup:
    """One per-lane event: where its sources live and how many there are."""

    event: str
    module: str
    lanes: int


def event_source_groups(config: BoomConfig) -> List[EventSourceGroup]:
    """The seven new BOOM events mapped to their source modules."""
    w_c = config.decode_width
    return [
        EventSourceGroup("fetch_bubbles", "decode", w_c),
        EventSourceGroup("uops_issued_int", "iq_int", config.issue_int),
        EventSourceGroup("uops_issued_mem", "iq_mem", config.issue_mem),
        EventSourceGroup("uops_issued_fp", "iq_fp", config.issue_fp),
        EventSourceGroup("uops_retired", "rob", w_c),
        EventSourceGroup("dcache_blocked", "lsu", w_c),
        EventSourceGroup("icache_blocked", "frontend", 1),
        EventSourceGroup("recovering", "frontend", 1),
        EventSourceGroup("fence_retired", "rob", 1),
    ]


@dataclass
class ArchStructure:
    """Structural inventory one counter architecture adds."""

    flop_bits: int = 0
    gates: int = 0
    wire_mm: float = 0.0          # bit-millimetres of added routing
    longest_wire_mm: float = 0.0
    csr_extra_delay_ns: float = 0.0


def _group_distance_mm(plan: Floorplan, group: EventSourceGroup) -> float:
    return plan.distance(group.module, "csr") / 1000.0


def structure_for(config: BoomConfig, architecture: str,
                  plan: Optional[Floorplan] = None,
                  monitored_lanes: Optional[Dict[str, int]] = None
                  ) -> ArchStructure:
    """Expand *architecture* into flops/gates/wires for *config*.

    ``monitored_lanes`` optionally restricts an event to fewer lanes
    (the §V-A single-lane approximation study).
    """
    if architecture not in ARCHITECTURES:
        raise ValueError(f"unknown architecture {architecture!r}")
    plan = plan or floorplan(config)
    structure = ArchStructure()
    if architecture == "baseline":
        return structure

    max_delay = 0.0
    for group in event_source_groups(config):
        lanes = group.lanes
        if monitored_lanes and group.event in monitored_lanes:
            lanes = max(1, min(lanes, monitored_lanes[group.event]))
        distance = _group_distance_mm(plan, group)
        chain_mm = (lanes - 1) * LOCAL_PITCH_UM / 1000.0

        if architecture == "scalar":
            # One 64-bit counter per source at the CSR file; every
            # source routes its own 1-bit event wire across the die.
            structure.flop_bits += 64 * lanes
            structure.gates += 20 * lanes          # increment logic
            structure.wire_mm += lanes * distance
            structure.longest_wire_mm = max(structure.longest_wire_mm,
                                            distance)
            max_delay = max(max_delay,
                            distance * WIRE_DELAY_PER_MM_NS)
        elif architecture == "adders":
            # Sequential adder chain near the sources, one multi-bit
            # increment trunk to a single counter (Fig. 6a).
            width = max(1, math.ceil(math.log2(lanes + 1)))
            structure.flop_bits += 64
            structure.gates += (lanes - 1) * 10 * width + 20
            structure.wire_mm += chain_mm + width * distance
            structure.longest_wire_mm = max(
                structure.longest_wire_mm, distance + chain_mm)
            delay = ((lanes - 1) * ADDER_STAGE_DELAY_NS
                     + (distance + chain_mm) * WIRE_DELAY_PER_MM_NS)
            max_delay = max(max_delay, delay)
        else:  # distributed
            # N-bit local counter + overflow flag at each source; the
            # rotating arbiter and principal counter sit in the CSR
            # file; only 1-bit overflow wires cross the die (Fig. 6b).
            width = max(1, math.ceil(math.log2(max(2, lanes))))
            structure.flop_bits += lanes * (width + 1) + 64
            structure.gates += lanes * 8 + 12 * lanes + 30  # arbiter
            structure.wire_mm += lanes * distance
            structure.longest_wire_mm = max(structure.longest_wire_mm,
                                            distance)
            # The long wires carry non-critical overflow flags; only
            # the local increment and the arbiter mux touch the path.
            select_depth = max(1, math.ceil(math.log2(max(2, lanes))))
            delay = (DISTRIBUTED_ARBITER_DELAY_NS
                     + select_depth * MUX_STAGE_DELAY_NS
                     + 0.05 * WIRE_DELAY_PER_MM_NS)
            max_delay = max(max_delay, delay)

    structure.csr_extra_delay_ns = max_delay
    return structure


# ---------------------------------------------------------------------------
# baseline tile metrics
# ---------------------------------------------------------------------------

def _base_wirelength_mm(config: BoomConfig, plan: Floorplan) -> float:
    """Crude total routing estimate: Rent-style area scaling."""
    return 2.2 * (tile_area(config) ** 0.62) / 1000.0


def _base_power_uw(config: BoomConfig) -> float:
    return tile_area(config) * BASE_POWER_DENSITY_UW_PER_UM2


def _base_csr_path_ns(config: BoomConfig, plan: Floorplan) -> float:
    """Longest register-to-register path crossing the CSR file."""
    die_mm = plan.die_width / 1000.0
    return 2.9 + 0.55 * die_mm


@dataclass
class FlowResult:
    """Post-placement metrics for one (size, architecture) run."""

    config_name: str
    architecture: str
    area_um2: float
    power_uw: float
    wirelength_mm: float
    longest_csr_path_ns: float
    longest_pmu_wire_mm: float
    area_overhead: float
    power_overhead: float
    wirelength_overhead: float

    @property
    def passes_200mhz(self) -> bool:
        return self.longest_csr_path_ns <= CLOCK_PERIOD_NS

    def normalized_csr_path(self, baseline: "FlowResult") -> float:
        return self.longest_csr_path_ns / baseline.longest_csr_path_ns


class PhysicalFlow:
    """Run the modelled flow for one BOOM size across architectures."""

    def __init__(self, config: BoomConfig,
                 calibration: Optional[Dict[str, float]] = None) -> None:
        self.config = config
        self.plan = floorplan(config)
        self.calibration = calibration or {"power": 1.0, "area": 1.0,
                                           "wirelength": 1.0}

    def run(self, architecture: str,
            monitored_lanes: Optional[Dict[str, int]] = None
            ) -> FlowResult:
        config = self.config
        plan = self.plan
        base_area = tile_area(config)
        base_power = _base_power_uw(config)
        base_wires = _base_wirelength_mm(config, plan)
        base_path = _base_csr_path_ns(config, plan)

        structure = structure_for(config, architecture, plan,
                                  monitored_lanes=monitored_lanes)
        raw_area = (structure.flop_bits * FLOP_BIT_AREA
                    + structure.gates * GATE_AREA)
        raw_power = (structure.flop_bits * FLOP_POWER_UW
                     + structure.wire_mm * WIRE_POWER_UW_PER_MM
                     + structure.gates * GATE_POWER_UW)
        raw_wires = structure.wire_mm

        area_overhead = self.calibration["area"] * raw_area / base_area
        power_overhead = self.calibration["power"] * raw_power / base_power
        wire_overhead = (self.calibration["wirelength"]
                         * raw_wires / base_wires)
        return FlowResult(
            config_name=config.name, architecture=architecture,
            area_um2=base_area * (1 + area_overhead),
            power_uw=base_power * (1 + power_overhead),
            wirelength_mm=base_wires * (1 + wire_overhead),
            longest_csr_path_ns=base_path + structure.csr_extra_delay_ns,
            longest_pmu_wire_mm=structure.longest_wire_mm,
            area_overhead=area_overhead,
            power_overhead=power_overhead,
            wirelength_overhead=wire_overhead)


def _raw_max_overheads(configs: Sequence[BoomConfig]
                       ) -> Tuple[float, float, float]:
    power = area = wires = 0.0
    for config in configs:
        flow = PhysicalFlow(config)
        for architecture in ARCHITECTURES[1:]:
            result = flow.run(architecture)
            power = max(power, result.power_overhead)
            area = max(area, result.area_overhead)
            wires = max(wires, result.wirelength_overhead)
    return power, area, wires


def paper_calibration(configs: Sequence[BoomConfig] = ALL_BOOM_CONFIGS
                      ) -> Dict[str, float]:
    """Scale factors pinning the worst-case overheads to the paper's.

    The structural model fixes the *shape* (ordering across sizes and
    architectures); this sets the absolute ceiling to +4.15% power,
    +1.54% area, +9.93% wirelength (§V-C).
    """
    raw_power, raw_area, raw_wires = _raw_max_overheads(configs)
    return {
        "power": PAPER_POWER_CEILING / raw_power if raw_power else 1.0,
        "area": PAPER_AREA_CEILING / raw_area if raw_area else 1.0,
        "wirelength": (PAPER_WIRELENGTH_CEILING / raw_wires
                       if raw_wires else 1.0),
    }


def sweep(configs: Sequence[BoomConfig] = ALL_BOOM_CONFIGS,
          architectures: Sequence[str] = ARCHITECTURES,
          calibrated: bool = True) -> Dict[str, Dict[str, FlowResult]]:
    """Fig. 9's full grid: {config name: {architecture: result}}."""
    calibration = paper_calibration(configs) if calibrated else None
    results: Dict[str, Dict[str, FlowResult]] = {}
    for config in configs:
        flow = PhysicalFlow(config, calibration=calibration)
        results[config.name] = {arch: flow.run(arch)
                                for arch in architectures}
    return results


def single_lane_wire_reduction(config: BoomConfig) -> float:
    """§V-A: monitoring one fetch lane instead of all of them shortens
    the longest fetch-bubble PMU wire (the paper reports 11.39%)."""
    plan = floorplan(config)
    group = next(g for g in event_source_groups(config)
                 if g.event == "fetch_bubbles")
    distance = _group_distance_mm(plan, group)
    chain_mm = (group.lanes - 1) * LOCAL_PITCH_UM / 1000.0
    full = distance + chain_mm
    if full == 0:
        return 0.0
    return chain_mm / full
