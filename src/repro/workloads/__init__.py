"""Workload suite: microbenchmarks, case studies, and SPEC proxies."""

from . import trace_cache
from .data import Lcg, doubles_as_dwords, dwords, ring_permutation
from .registry import (ENGINE_ENV, Workload, build_program, build_trace,
                       clear_caches, get_workload, register, workload_names)
from .spec import SPEC_INTRATE

__all__ = [
    "ENGINE_ENV",
    "Lcg",
    "SPEC_INTRATE",
    "Workload",
    "trace_cache",
    "build_program",
    "build_trace",
    "clear_caches",
    "doubles_as_dwords",
    "dwords",
    "get_workload",
    "register",
    "ring_permutation",
    "workload_names",
]
