"""Case-study workloads (§V-A, Fig. 7c/d/e/f/m/n).

- ``brmiss`` / ``brmiss_inv``: a chain of 256 forward data-dependent
  branches executed in an outer loop.  In the base build every branch is
  taken; the inverted build flips the conditions so none is.  Rocket's
  28-entry BTB thrashes, so its effective prediction is always
  fall-through: the base build is always mispredicted and the inverted
  build always correct (Fig. 7d).  BOOM's TAGE starts weakly-taken and
  its 512-entry BTB retains the chain, so the effect reverses (Fig. 7n).

- ``coremark`` / ``coremark_sched``: a CoreMark-flavoured kernel (list
  walk, matrix row products, state machine, CRC) whose inner compute
  block exists in two instruction orders with the *same instruction
  multiset*: the base build places dependent ops back-to-back, the
  scheduled build interleaves the independent chains, mimicking gcc's
  ``-fschedule-insns`` (Fig. 7e/f/m).
"""

from __future__ import annotations

from .data import Lcg, dwords
from .registry import Workload, register

_BR_CHAIN = 256
_BR_OUTER = 40


def _brmiss_source(scale: float, inverted: bool) -> str:
    chain = max(32, int(_BR_CHAIN * scale))
    outer = max(8, int(_BR_OUTER * scale))
    # Data values are all below the threshold, so `blt` is always taken
    # and the inverted `bge` never is.
    data = [1] * 64
    op = "bge" if inverted else "blt"
    units = []
    for k in range(chain):
        offset = (k % 64) * 8
        units.append(f"""
    ld t1, {offset}(a0)
    {op} t1, t2, skip_{k}
    addi s1, s1, 1
skip_{k}:""")
    body = "".join(units)
    return f"""
.data
{dwords("chain_data", data)}
.text
_start:
    la a0, chain_data
    li t2, 10                 # threshold
    li s1, 0                  # not-taken counter
    li s2, 0                  # outer loop
    li s3, {outer}
outer_loop:
    bge s2, s3, chain_done
{body}
    addi s2, s2, 1
    j outer_loop
chain_done:
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall
"""


def _brmiss_exit(scale: float, inverted: bool) -> int:
    chain = max(32, int(_BR_CHAIN * scale))
    outer = max(8, int(_BR_OUTER * scale))
    # base: every branch taken, counter never increments;
    # inverted: every branch falls through, counter counts every unit.
    return (chain * outer) % 4096 if inverted else 0


# ---------------------------------------------------------------------------
# CoreMark-flavoured kernel with selectable instruction scheduling
# ---------------------------------------------------------------------------

_CM_LIST_LEN = 16
_CM_ITERATIONS = 150

# The compute block as (unscheduled, scheduled) instruction orders.  Both
# sequences contain exactly the same instructions; only the order differs
# (dependent ops back-to-back vs. interleaved independent chains).
_CM_BLOCK_UNSCHEDULED = """
    ld t1, 0(s4)
    addi t1, t1, 3
    slli t2, t1, 2
    xor t3, t2, t1
    mul t4, t3, s9
    add s1, s1, t4
    ld t5, 8(s4)
    addi t5, t5, 5
    slli t6, t5, 1
    xor a2, t6, t5
    mul a3, a2, s9
    add s1, s1, a3
    ld a4, 16(s4)
    addi a4, a4, 7
    slli a5, a4, 3
    xor a6, a5, a4
    mul a7, a6, s9
    add s1, s1, a7
"""

_CM_BLOCK_SCHEDULED = """
    ld t1, 0(s4)
    ld t5, 8(s4)
    ld a4, 16(s4)
    addi t1, t1, 3
    addi t5, t5, 5
    addi a4, a4, 7
    slli t2, t1, 2
    slli t6, t5, 1
    slli a5, a4, 3
    xor t3, t2, t1
    xor a2, t6, t5
    xor a6, a5, a4
    mul t4, t3, s9
    mul a3, a2, s9
    mul a7, a6, s9
    add s1, s1, t4
    add s1, s1, a3
    add s1, s1, a7
"""


def _coremark_source(scale: float, scheduled: bool) -> str:
    iterations = max(30, int(_CM_ITERATIONS * scale))
    rng = Lcg(87)
    # Small circular linked list: next-index table plus payload.
    next_idx = list(range(1, _CM_LIST_LEN)) + [0]
    payload = rng.values(_CM_LIST_LEN, 100)
    matrix = rng.values(16, 10)          # 4x4 matrix
    vector = rng.values(4, 10)
    block = _CM_BLOCK_SCHEDULED if scheduled else _CM_BLOCK_UNSCHEDULED
    return f"""
.data
{dwords("list_next", next_idx)}
{dwords("list_val", payload)}
{dwords("cm_mat", matrix)}
{dwords("cm_vec", vector)}
cm_buf: .dword 11, 22, 33
.text
_start:
    la s2, list_next
    la s3, list_val
    la s4, cm_buf
    la s5, cm_mat
    la s6, cm_vec
    li s9, 3                  # multiplier constant
    li s0, {iterations}
    li s1, 0                  # checksum
    li s7, 0                  # iteration
    li s8, 0                  # list cursor
cm_loop:
    bge s7, s0, cm_done
    # -- list walk: follow 4 links, accumulate payload ----------------
    li t0, 4
walk_loop:
    beqz t0, walk_done
    slli t1, s8, 3
    add t2, s3, t1
    ld t3, 0(t2)
    add s1, s1, t3
    add t4, s2, t1
    ld s8, 0(t4)
    addi t0, t0, -1
    j walk_loop
walk_done:
    # -- matrix row x vector (row = iteration & 3) ---------------------
    andi t0, s7, 3
    slli t0, t0, 5            # row * 4 dwords
    add t1, s5, t0
    li t2, 0                  # col
    li t3, 0                  # dot
dot_loop:
    li t4, 4
    bge t2, t4, dot_done
    slli t5, t2, 3
    add t6, t1, t5
    ld a2, 0(t6)
    add a3, s6, t5
    ld a4, 0(a3)
    mul a5, a2, a4
    add t3, t3, a5
    addi t2, t2, 1
    j dot_loop
dot_done:
    add s1, s1, t3
    # -- state machine on the dot value --------------------------------
    andi t0, t3, 3
    beqz t0, cm_state0
    li t4, 1
    beq t0, t4, cm_state1
    li t4, 2
    beq t0, t4, cm_state2
    addi s1, s1, 9
    j cm_state_done
cm_state0:
    addi s1, s1, 2
    j cm_state_done
cm_state1:
    addi s1, s1, 4
    j cm_state_done
cm_state2:
    addi s1, s1, 6
cm_state_done:
    # -- CRC-ish fold ---------------------------------------------------
    slli t0, s1, 1
    srli t1, s1, 7
    xor s1, t0, t1
    # -- compute block (the scheduling case study) ----------------------
{block}
    addi s7, s7, 1
    j cm_loop
cm_done:
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall
"""


def _coremark_exit(scale: float) -> int:
    """Python model of the kernel (identical for both schedules)."""
    iterations = max(30, int(_CM_ITERATIONS * scale))
    rng = Lcg(87)
    next_idx = list(range(1, _CM_LIST_LEN)) + [0]
    payload = rng.values(_CM_LIST_LEN, 100)
    matrix = rng.values(16, 10)
    vector = rng.values(4, 10)
    buf = [11, 22, 33]
    mask = (1 << 64) - 1

    checksum = 0
    cursor = 0
    for i in range(iterations):
        for _ in range(4):
            checksum = (checksum + payload[cursor]) & mask
            cursor = next_idx[cursor]
        row = i & 3
        dot = sum(matrix[row * 4 + c] * vector[c] for c in range(4))
        checksum = (checksum + dot) & mask
        state = dot & 3
        checksum = (checksum + (2, 4, 6, 9)[state]) & mask
        checksum = (((checksum << 1) & mask) ^ (checksum >> 7)) & mask
        for offset, addend, shift in ((0, 3, 2), (1, 5, 1), (2, 7, 3)):
            value = (buf[offset] + addend) & mask
            mixed = ((value << shift) & mask) ^ value
            checksum = (checksum + mixed * 3) & mask
    return checksum % 4096


def _register_all() -> None:
    register(Workload(
        name="brmiss", category="case-study",
        source_builder=lambda scale: _brmiss_source(scale, inverted=False),
        description="chain of taken forward branches (Rocket CS2 base)",
        expected_exit=lambda scale: _brmiss_exit(scale, inverted=False)))
    register(Workload(
        name="brmiss_inv", category="case-study",
        source_builder=lambda scale: _brmiss_source(scale, inverted=True),
        description="inverted branch chain (Rocket CS2 / BOOM CS)",
        expected_exit=lambda scale: _brmiss_exit(scale, inverted=True)))
    register(Workload(
        name="coremark", category="micro",
        source_builder=lambda scale: _coremark_source(scale,
                                                      scheduled=False),
        description="CoreMark-flavoured kernel, unscheduled compute block",
        expected_exit=_coremark_exit))
    register(Workload(
        name="coremark_sched", category="case-study",
        source_builder=lambda scale: _coremark_source(scale,
                                                      scheduled=True),
        description="same kernel with -fschedule-insns style ordering",
        expected_exit=_coremark_exit))


_register_all()
