"""Deterministic data generation for the workload suite.

All workloads must be reproducible run-to-run, so every "random" input is
produced by a fixed-seed linear congruential generator.  Helpers format
Python values into ``.data`` section directives.
"""

from __future__ import annotations

from typing import List, Sequence

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_MASK64 = (1 << 64) - 1


class Lcg:
    """64-bit LCG (Knuth's MMIX constants); deterministic across runs."""

    def __init__(self, seed: int = 0x1CE1CE) -> None:
        self.state = seed & _MASK64

    def next(self) -> int:
        self.state = (self.state * _LCG_MULT + _LCG_INC) & _MASK64
        return self.state

    def below(self, bound: int) -> int:
        """Uniform-ish integer in [0, bound)."""
        return (self.next() >> 16) % bound

    def values(self, count: int, bound: int) -> List[int]:
        return [self.below(bound) for _ in range(count)]

    def permutation(self, count: int) -> List[int]:
        """Fisher-Yates permutation of range(count)."""
        items = list(range(count))
        for i in range(count - 1, 0, -1):
            j = self.below(i + 1)
            items[i], items[j] = items[j], items[i]
        return items


def dwords(label: str, values: Sequence[int], per_line: int = 8) -> str:
    """Render a labelled ``.dword`` block."""
    lines = [f"{label}:"]
    for start in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[start:start + per_line])
        lines.append(f"    .dword {chunk}")
    if not values:
        lines.append("    .dword 0")
    return "\n".join(lines)


def doubles_as_dwords(label: str, values: Sequence[float],
                      per_line: int = 4) -> str:
    """Render doubles as raw IEEE-754 ``.dword`` bit patterns."""
    import struct

    bits = [struct.unpack("<Q", struct.pack("<d", v))[0] for v in values]
    return dwords(label, bits, per_line=per_line)


def ring_permutation(count: int, seed: int = 7) -> List[int]:
    """A single-cycle permutation for pointer-chase workloads.

    ``next[i]`` is the successor of node ``i``; following it from node 0
    visits every node exactly once before returning to 0.
    """
    order = Lcg(seed).permutation(count)
    successor = [0] * count
    for position in range(count):
        successor[order[position]] = order[(position + 1) % count]
    return successor
