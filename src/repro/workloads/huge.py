"""The ``huge`` workload tier: traces too long for serial sweeps.

These kernels follow the microbenchmark idiom (deterministic data,
checksum-verified exit) but run one to two orders of magnitude more
dynamic instructions at ``scale=1.0`` than the micro tier.  They are
registered under :data:`~repro.workloads.registry.HUGE_CATEGORY`, which
the registry excludes from default enumeration, and
:func:`repro.tools.tma_tool.run_core` refuses to run them without
``windows=`` — the windowed/sampled engine is the only sanctioned path
(see ``docs/windowed.md``).

Value growth in both kernels is bounded well under 2**52, so the
Python ``expected_exit`` mirrors are plain integer arithmetic with no
64-bit wraparound to emulate.
"""

from __future__ import annotations

from typing import List, Tuple

from .data import Lcg, dwords
from .micro import _CHECKSUM_ASM, _weighted_checksum
from .registry import HUGE_CATEGORY, Workload, register


def _pow2_floor(value: int, minimum: int = 256) -> int:
    size = minimum
    while size * 2 <= max(value, minimum):
        size *= 2
    return size


# ---------------------------------------------------------------------------
# huge-stream — streaming read-read-write passes over a large array
# (backend/memory-bound at full scale: the footprint dwarfs the L1D)
# ---------------------------------------------------------------------------

def _stream_params(scale: float) -> Tuple[int, int, int]:
    n = _pow2_floor(int(4096 * scale))
    passes = max(4, int(12 * scale))
    stride = n // 2 + 1  # co-prime with the power-of-two mask
    return n, passes, stride


def _stream_values(n: int) -> List[int]:
    return Lcg(97).values(n, 1 << 16)


def _stream_source(scale: float) -> str:
    n, passes, stride = _stream_params(scale)
    values = _stream_values(n)
    return f"""
.data
{dwords("arr", values)}
.text
_start:
    la a0, arr
    li s0, {n}
    li s1, {passes}
    li s2, {n - 1}            # index mask (n is a power of two)
stream_pass:
    beqz s1, stream_done
    li t0, 0                  # i
stream_loop:
    bge t0, s0, stream_next
    addi t1, t0, {stride}
    and t1, t1, s2            # (i + stride) mod n
    slli t2, t0, 3
    add t2, a0, t2
    ld t3, 0(t2)
    slli t4, t1, 3
    add t4, a0, t4
    ld t5, 0(t4)
    add t3, t3, t5
    sd t3, 0(t2)
    addi t0, t0, 1
    j stream_loop
stream_next:
    addi s1, s1, -1
    j stream_pass
stream_done:
{_CHECKSUM_ASM}
"""


def _stream_exit(scale: float) -> int:
    n, passes, stride = _stream_params(scale)
    arr = list(_stream_values(n))
    mask = n - 1
    for _ in range(passes):
        for i in range(n):
            arr[i] = arr[i] + arr[(i + stride) & mask]
    return _weighted_checksum(arr)


# ---------------------------------------------------------------------------
# huge-walk — data-dependent branch per element (bad-speculation heavy)
# ---------------------------------------------------------------------------

def _walk_params(scale: float) -> Tuple[int, int]:
    n = _pow2_floor(int(2048 * scale))
    passes = max(6, int(20 * scale))
    return n, passes


def _walk_values(n: int) -> List[int]:
    return Lcg(131).values(n, 1 << 16)


def _walk_source(scale: float) -> str:
    n, passes = _walk_params(scale)
    values = _walk_values(n)
    return f"""
.data
{dwords("arr", values)}
.text
_start:
    la a0, arr
    li s0, {n}
    li s1, {passes}
walk_pass:
    beqz s1, walk_done
    li t0, 0                  # i
walk_loop:
    bge t0, s0, walk_next
    slli t1, t0, 3
    add t1, a0, t1
    ld t2, 0(t1)
    andi t3, t2, 1
    beqz t3, walk_even
    srli t2, t2, 1            # odd: halve + offset
    addi t2, t2, 1234
    j walk_store
walk_even:
    addi t2, t2, 7            # even: small nudge
walk_store:
    sd t2, 0(t1)
    addi t0, t0, 1
    j walk_loop
walk_next:
    addi s1, s1, -1
    j walk_pass
walk_done:
{_CHECKSUM_ASM}
"""


def _walk_exit(scale: float) -> int:
    n, passes = _walk_params(scale)
    arr = list(_walk_values(n))
    for _ in range(passes):
        for i in range(n):
            v = arr[i]
            arr[i] = (v >> 1) + 1234 if v & 1 else v + 7
    return _weighted_checksum(arr)


def _register_all() -> None:
    specs = [
        ("huge-stream", _stream_source, _stream_exit,
         "long streaming read-read-write passes (memory-bound at scale)"),
        ("huge-walk", _walk_source, _walk_exit,
         "long data-dependent-branch walk (bad-speculation heavy)"),
    ]
    for name, builder, exit_fn, description in specs:
        register(Workload(
            name=name, category=HUGE_CATEGORY, source_builder=builder,
            description=description, expected_exit=exit_fn))


_register_all()
