"""Microbenchmark suite (riscv-tests style, Table III).

Each kernel is a real algorithm written in the RV64 subset; the builder
generates deterministic input data and the kernel exits with a checksum
that :func:`repro.workloads.registry.build_trace` verifies against the
value computed in Python — a broken kernel cannot silently produce a
bogus characterization.
"""

from __future__ import annotations

from typing import List

from .data import Lcg, doubles_as_dwords, dwords
from .registry import Workload, register

_CHECK_MOD = 4096


def _weighted_checksum(values: List[int]) -> int:
    return sum(v * (i + 1) for i, v in enumerate(values)) % _CHECK_MOD


_CHECKSUM_ASM = """
checksum:
    # a0 = base, s0 = count -> exit with sum(arr[i]*(i+1)) % 4096
    li t0, 0
    li t1, 0
cksum_loop:
    bge t1, s0, cksum_done
    slli t2, t1, 3
    add t2, a0, t2
    ld t3, 0(t2)
    addi t4, t1, 1
    mul t5, t3, t4
    add t0, t0, t5
    addi t1, t1, 1
    j cksum_loop
cksum_done:
    li t6, 4096
    remu a0, t0, t6
    li a7, 93
    ecall
"""


# ---------------------------------------------------------------------------
# mergesort — the motivating example's workload (§III, Fig. 3)
# ---------------------------------------------------------------------------

def _mergesort_source(scale: float) -> str:
    n = max(16, int(256 * scale))
    values = Lcg(11).values(n, 1 << 16)
    return f"""
.data
{dwords("arr", values)}
tmp: .space {8 * n}
.text
_start:
    la a0, arr
    la a1, tmp
    li s0, {n}
    li s1, 1                  # width
width_loop:
    bge s1, s0, sort_done
    li s2, 0                  # lo
pair_loop:
    bge s2, s0, pass_done
    add s3, s2, s1            # mid
    blt s3, s0, mid_ok
    mv s3, s0
mid_ok:
    slli t0, s1, 1
    add s4, s2, t0            # hi
    blt s4, s0, hi_ok
    mv s4, s0
hi_ok:
    mv t0, s2                 # i
    mv t1, s3                 # j
    mv t2, s2                 # k
merge_loop:
    bge t0, s3, copy_right
    bge t1, s4, copy_left
    slli t3, t0, 3
    add t3, a0, t3
    ld t4, 0(t3)
    slli t5, t1, 3
    add t5, a0, t5
    ld t6, 0(t5)
    slli a2, t2, 3
    add a2, a1, a2
    bgt t4, t6, take_right
    sd t4, 0(a2)
    addi t0, t0, 1
    j merge_next
take_right:
    sd t6, 0(a2)
    addi t1, t1, 1
merge_next:
    addi t2, t2, 1
    j merge_loop
copy_right:
    bge t1, s4, merge_done
    slli t5, t1, 3
    add t5, a0, t5
    ld t6, 0(t5)
    slli a2, t2, 3
    add a2, a1, a2
    sd t6, 0(a2)
    addi t1, t1, 1
    addi t2, t2, 1
    j copy_right
copy_left:
    bge t0, s3, merge_done
    slli t3, t0, 3
    add t3, a0, t3
    ld t4, 0(t3)
    slli a2, t2, 3
    add a2, a1, a2
    sd t4, 0(a2)
    addi t0, t0, 1
    addi t2, t2, 1
    j copy_left
merge_done:
    slli t0, s1, 1
    add s2, s2, t0
    j pair_loop
pass_done:
    li t0, 0
copy_back:
    bge t0, s0, copy_back_done
    slli t1, t0, 3
    add t2, a1, t1
    ld t3, 0(t2)
    add t4, a0, t1
    sd t3, 0(t4)
    addi t0, t0, 1
    j copy_back
copy_back_done:
    slli s1, s1, 1
    j width_loop
sort_done:
{_CHECKSUM_ASM}
"""


def _mergesort_exit(scale: float) -> int:
    n = max(16, int(256 * scale))
    return _weighted_checksum(sorted(Lcg(11).values(n, 1 << 16)))


# ---------------------------------------------------------------------------
# qsort — Bad-Speculation dominated on Rocket (§V-A)
# ---------------------------------------------------------------------------

def _qsort_source(scale: float) -> str:
    n = max(16, int(256 * scale))
    values = Lcg(23).values(n, 1 << 16)
    return f"""
.data
{dwords("arr", values)}
stack: .space {16 * (n + 4)}
.text
_start:
    la a0, arr
    la s0, stack
    li t0, 0
    li t1, {n - 1}
    sd t0, 0(s0)
    sd t1, 8(s0)
    addi s0, s0, 16
qs_loop:
    la t2, stack
    beq s0, t2, qs_done
    addi s0, s0, -16
    ld s1, 0(s0)              # lo
    ld s2, 8(s0)              # hi
    bge s1, s2, qs_loop
    slli t3, s2, 3
    add t3, a0, t3
    ld s3, 0(t3)              # pivot = arr[hi]
    addi s4, s1, -1           # i
    mv t4, s1                 # j
part_loop:
    bge t4, s2, part_done
    slli t5, t4, 3
    add t5, a0, t5
    ld t6, 0(t5)
    bgt t6, s3, part_next
    addi s4, s4, 1
    slli a2, s4, 3
    add a2, a0, a2
    ld a3, 0(a2)
    sd t6, 0(a2)
    sd a3, 0(t5)
part_next:
    addi t4, t4, 1
    j part_loop
part_done:
    addi s4, s4, 1            # p
    slli a2, s4, 3
    add a2, a0, a2
    ld a3, 0(a2)
    slli t5, s2, 3
    add t5, a0, t5
    ld t6, 0(t5)
    sd t6, 0(a2)
    sd a3, 0(t5)
    addi a4, s4, -1
    sd s1, 0(s0)
    sd a4, 8(s0)
    addi s0, s0, 16
    addi a5, s4, 1
    sd a5, 0(s0)
    sd s2, 8(s0)
    addi s0, s0, 16
    j qs_loop
qs_done:
    li s0, {n}
{_CHECKSUM_ASM}
"""


def _qsort_exit(scale: float) -> int:
    n = max(16, int(256 * scale))
    return _weighted_checksum(sorted(Lcg(23).values(n, 1 << 16)))


# ---------------------------------------------------------------------------
# rsort — loop-centric radix sort, near-ideal IPC on Rocket (§V-A)
# ---------------------------------------------------------------------------

def _rsort_source(scale: float) -> str:
    n = max(16, int(256 * scale))
    values = Lcg(37).values(n, 1 << 16)
    return f"""
.data
{dwords("arr", values)}
tmp:   .space {8 * n}
count: .space {8 * 256}
.text
_start:
    la a0, arr
    la a1, tmp
    la a2, count
    li s0, {n}
    li s1, 0                  # shift: 0, then 8
shift_loop:
    li t0, 16
    bge s1, t0, rs_done
    # zero the counters
    li t0, 0
zero_loop:
    li t1, 256
    bge t0, t1, zero_done
    slli t2, t0, 3
    add t2, a2, t2
    sd zero, 0(t2)
    addi t0, t0, 1
    j zero_loop
zero_done:
    # histogram
    li t0, 0
hist_loop:
    bge t0, s0, hist_done
    slli t1, t0, 3
    add t1, a0, t1
    ld t2, 0(t1)
    srl t2, t2, s1
    andi t2, t2, 255
    slli t2, t2, 3
    add t2, a2, t2
    ld t3, 0(t2)
    addi t3, t3, 1
    sd t3, 0(t2)
    addi t0, t0, 1
    j hist_loop
hist_done:
    # exclusive prefix sums -> start offsets
    li t0, 1
prefix_loop:
    li t1, 256
    bge t0, t1, prefix_done
    slli t2, t0, 3
    add t2, a2, t2
    ld t3, 0(t2)
    ld t4, -8(t2)
    add t3, t3, t4
    sd t3, 0(t2)
    addi t0, t0, 1
    j prefix_loop
prefix_done:
    # place from the end to keep stability
    addi t0, s0, -1
place_loop:
    bltz t0, place_done
    slli t1, t0, 3
    add t1, a0, t1
    ld t2, 0(t1)              # value
    srl t3, t2, s1
    andi t3, t3, 255
    slli t3, t3, 3
    add t3, a2, t3
    ld t4, 0(t3)
    addi t4, t4, -1
    sd t4, 0(t3)
    slli t5, t4, 3
    add t5, a1, t5
    sd t2, 0(t5)
    addi t0, t0, -1
    j place_loop
place_done:
    # copy tmp -> arr
    li t0, 0
rs_copy:
    bge t0, s0, rs_copy_done
    slli t1, t0, 3
    add t2, a1, t1
    ld t3, 0(t2)
    add t4, a0, t1
    sd t3, 0(t4)
    addi t0, t0, 1
    j rs_copy
rs_copy_done:
    addi s1, s1, 8
    j shift_loop
rs_done:
{_CHECKSUM_ASM}
"""


def _rsort_exit(scale: float) -> int:
    n = max(16, int(256 * scale))
    return _weighted_checksum(sorted(Lcg(37).values(n, 1 << 16)))


# ---------------------------------------------------------------------------
# memcpy — Memory-Bound standout on both cores (§V-A)
# ---------------------------------------------------------------------------

def _memcpy_source(scale: float) -> str:
    n = max(512, int(4096 * scale))   # dwords: 32 KiB at scale 1
    return f"""
.data
src: .space {8 * n}
dst: .space {8 * n}
.text
_start:
    # seed only the checksummed prefix; the bulk stays cold so the copy
    # streams misses through the memory system (Memory-Bound standout)
    la a0, src
    li t0, 0
init_loop:
    li t1, 64
    bge t0, t1, init_done
    slli t2, t0, 3
    ori t2, t2, 5
    andi t2, t2, 1023
    slli t3, t0, 3
    add t3, a0, t3
    sd t2, 0(t3)
    addi t0, t0, 1
    j init_loop
init_done:
    la a0, src
    la a1, dst
    li t0, 0
copy_loop:
    li t1, {n}
    bge t0, t1, copy_done
    slli t2, t0, 3
    add t3, a0, t2
    ld t4, 0(t3)
    add t5, a1, t2
    sd t4, 0(t5)
    addi t0, t0, 1
    j copy_loop
copy_done:
    la a0, dst
    li s0, 64
{_CHECKSUM_ASM}
"""


def _memcpy_exit(scale: float) -> int:
    values = [((i << 3) | 5) & 1023 for i in range(64)]
    return _weighted_checksum(values)


# ---------------------------------------------------------------------------
# mm — double-precision matrix multiply (FP issue-queue pressure)
# ---------------------------------------------------------------------------

def _mm_matrices(n: int):
    a = [[float((i + j) % 5) for j in range(n)] for i in range(n)]
    b = [[float((i * j) % 7) for j in range(n)] for i in range(n)]
    return a, b


def _mm_source(scale: float) -> str:
    n = max(6, int(12 * scale))
    a, b = _mm_matrices(n)
    flat_a = [v for row in a for v in row]
    flat_b = [v for row in b for v in row]
    return f"""
.data
{doubles_as_dwords("mat_a", flat_a)}
{doubles_as_dwords("mat_b", flat_b)}
mat_c: .space {8 * n * n}
.text
_start:
    la a0, mat_a
    la a1, mat_b
    la a2, mat_c
    li s0, {n}
    li s1, 0                  # i
i_loop:
    bge s1, s0, mm_done
    li s2, 0                  # j
j_loop:
    bge s2, s0, i_next
    fmv.d.x ft0, zero         # acc = 0.0
    li s3, 0                  # k
k_loop:
    bge s3, s0, k_done
    mul t0, s1, s0
    add t0, t0, s3
    slli t0, t0, 3
    add t0, a0, t0
    fld ft1, 0(t0)            # a[i][k]
    mul t1, s3, s0
    add t1, t1, s2
    slli t1, t1, 3
    add t1, a1, t1
    fld ft2, 0(t1)            # b[k][j]
    fmul.d ft3, ft1, ft2
    fadd.d ft0, ft0, ft3
    addi s3, s3, 1
    j k_loop
k_done:
    mul t2, s1, s0
    add t2, t2, s2
    slli t2, t2, 3
    add t2, a2, t2
    fsd ft0, 0(t2)
    addi s2, s2, 1
    j j_loop
i_next:
    addi s1, s1, 1
    j i_loop
mm_done:
    # exit with (c[0][1] + c[n-1][n-2]) as an integer, mod 4096
    la a2, mat_c
    fld ft0, 8(a2)
    mul t0, s0, s0
    addi t0, t0, -2
    slli t0, t0, 3
    add t0, a2, t0
    fld ft1, 0(t0)
    fadd.d ft0, ft0, ft1
    fcvt.l.d a0, ft0
    li t1, 4096
    remu a0, a0, t1
    li a7, 93
    ecall
"""


def _mm_exit(scale: float) -> int:
    n = max(6, int(12 * scale))
    a, b = _mm_matrices(n)

    def cell(i: int, j: int) -> float:
        return sum(a[i][k] * b[k][j] for k in range(n))

    return int(cell(0, 1) + cell(n - 1, n - 2)) % 4096


# ---------------------------------------------------------------------------
# vvadd — streaming vector add
# ---------------------------------------------------------------------------

def _vvadd_source(scale: float) -> str:
    n = max(128, int(1500 * scale))
    a = Lcg(41).values(n, 1000)
    b = Lcg(43).values(n, 1000)
    return f"""
.data
{dwords("vec_a", a)}
{dwords("vec_b", b)}
vec_c: .space {8 * n}
.text
_start:
    la a0, vec_a
    la a1, vec_b
    la a2, vec_c
    li s0, {n}
    li t0, 0
vv_loop:
    bge t0, s0, vv_done
    slli t1, t0, 3
    add t2, a0, t1
    ld t3, 0(t2)
    add t4, a1, t1
    ld t5, 0(t4)
    add t3, t3, t5
    add t6, a2, t1
    sd t3, 0(t6)
    addi t0, t0, 1
    j vv_loop
vv_done:
    mv a0, a2
    li s0, 64
{_CHECKSUM_ASM}
"""


def _vvadd_exit(scale: float) -> int:
    n = max(128, int(1500 * scale))
    a = Lcg(41).values(n, 1000)
    b = Lcg(43).values(n, 1000)
    return _weighted_checksum([a[i] + b[i] for i in range(64)])


# ---------------------------------------------------------------------------
# spmv — sparse matrix-vector product (irregular gathers)
# ---------------------------------------------------------------------------

def _spmv_inputs(scale: float):
    rows = max(32, int(128 * scale))
    nnz_per_row = 8
    x_len = 2048
    rng = Lcg(53)
    cols = [rng.below(x_len) for _ in range(rows * nnz_per_row)]
    vals = [1 + rng.below(9) for _ in range(rows * nnz_per_row)]
    x = [rng.below(100) for _ in range(x_len)]
    return rows, nnz_per_row, x_len, cols, vals, x


def _spmv_source(scale: float) -> str:
    rows, nnz, x_len, cols, vals, x = _spmv_inputs(scale)
    return f"""
.data
{dwords("cols", cols)}
{dwords("vals", vals)}
{dwords("vec_x", x)}
vec_y: .space {8 * rows}
.text
_start:
    la a0, cols
    la a1, vals
    la a2, vec_x
    la a3, vec_y
    li s0, {rows}
    li s1, {nnz}
    li t0, 0                  # row
row_loop:
    bge t0, s0, spmv_done
    mul s2, t0, s1            # k = row * nnz
    add s3, s2, s1            # k_end
    li s4, 0                  # acc
nz_loop:
    bge s2, s3, nz_done
    slli t1, s2, 3
    add t2, a0, t1
    ld t3, 0(t2)              # col
    add t4, a1, t1
    ld t5, 0(t4)              # val
    slli t3, t3, 3
    add t3, a2, t3
    ld t6, 0(t3)              # x[col]
    mul t5, t5, t6
    add s4, s4, t5
    addi s2, s2, 1
    j nz_loop
nz_done:
    slli t1, t0, 3
    add t1, a3, t1
    sd s4, 0(t1)
    addi t0, t0, 1
    j row_loop
spmv_done:
    mv a0, a3
    li s0, 32
{_CHECKSUM_ASM}
"""


def _spmv_exit(scale: float) -> int:
    rows, nnz, x_len, cols, vals, x = _spmv_inputs(scale)
    y = []
    for row in range(min(rows, 32)):
        acc = 0
        for k in range(row * nnz, row * nnz + nnz):
            acc += vals[k] * x[cols[k]]
        y.append(acc)
    return _weighted_checksum(y)


# ---------------------------------------------------------------------------
# towers — recursive Towers of Hanoi (call/return + RAS exercise)
# ---------------------------------------------------------------------------

def _towers_source(scale: float) -> str:
    disks = max(6, int(10 * scale))
    return f"""
.text
_start:
    li a0, {disks}
    li a1, 0
    li a2, 1
    li a3, 2
    li s0, 0                  # move counter
    call hanoi
    li t0, 4096
    remu a0, s0, t0
    li a7, 93
    ecall

hanoi:
    addi sp, sp, -40
    sd ra, 0(sp)
    sd a0, 8(sp)
    sd a1, 16(sp)
    sd a2, 24(sp)
    sd a3, 32(sp)
    li t0, 1
    bgt a0, t0, recurse
    addi s0, s0, 1
    j unwind
recurse:
    # hanoi(n-1, from, via, to)
    addi a0, a0, -1
    mv t1, a2
    mv a2, a3
    mv a3, t1
    call hanoi
    # restore and count this disk's move
    ld a0, 8(sp)
    ld a1, 16(sp)
    ld a2, 24(sp)
    ld a3, 32(sp)
    addi s0, s0, 1
    # hanoi(n-1, via, from, to)
    addi a0, a0, -1
    mv t1, a1
    mv a1, a3
    mv a3, t1
    call hanoi
unwind:
    ld ra, 0(sp)
    addi sp, sp, 40
    ret
"""


def _towers_exit(scale: float) -> int:
    disks = max(6, int(10 * scale))
    return ((1 << disks) - 1) % 4096


# ---------------------------------------------------------------------------
# median — 3-point median filter (branchy compare tree)
# ---------------------------------------------------------------------------

def _median_source(scale: float) -> str:
    n = max(64, int(400 * scale))
    values = Lcg(61).values(n, 256)
    return f"""
.data
{dwords("sig", values)}
flt: .space {8 * n}
.text
_start:
    la a0, sig
    la a1, flt
    li s0, {n}
    li t0, 1
med_loop:
    addi t1, s0, -1
    bge t0, t1, med_done
    slli t2, t0, 3
    add t2, a0, t2
    ld t3, -8(t2)             # lo
    ld t4, 0(t2)              # mid
    ld t5, 8(t2)              # hi
    # sort the three values with compares (branch heavy)
    ble t3, t4, m1
    mv t6, t3
    mv t3, t4
    mv t4, t6
m1:
    ble t4, t5, m2
    mv t6, t4
    mv t4, t5
    mv t5, t6
m2:
    ble t3, t4, m3
    mv t6, t3
    mv t3, t4
    mv t4, t6
m3:
    slli t2, t0, 3
    add t2, a1, t2
    sd t4, 0(t2)
    addi t0, t0, 1
    j med_loop
med_done:
    mv a0, a1
    li s0, 48
{_CHECKSUM_ASM}
"""


def _median_exit(scale: float) -> int:
    n = max(64, int(400 * scale))
    values = Lcg(61).values(n, 256)
    filtered = [0] * n
    for i in range(1, n - 1):
        filtered[i] = sorted(values[i - 1:i + 2])[1]
    return _weighted_checksum(filtered[:48])


# ---------------------------------------------------------------------------
# multiply — software shift-add multiply (serial dependency chain)
# ---------------------------------------------------------------------------

def _multiply_source(scale: float) -> str:
    pairs = max(32, int(150 * scale))
    a = Lcg(71).values(pairs, 1 << 16)
    b = Lcg(73).values(pairs, 1 << 16)
    return f"""
.data
{dwords("mul_a", a)}
{dwords("mul_b", b)}
.text
_start:
    la a0, mul_a
    la a1, mul_b
    li s0, {pairs}
    li s1, 0                  # checksum
    li t0, 0                  # pair index
pair_loop:
    bge t0, s0, mul_done
    slli t1, t0, 3
    add t2, a0, t1
    ld t3, 0(t2)              # multiplicand
    add t4, a1, t1
    ld t5, 0(t4)              # multiplier
    li t6, 0                  # product
    li a2, 16                 # 16 bits
bit_loop:
    beqz a2, bit_done
    andi a3, t5, 1
    beqz a3, no_add
    add t6, t6, t3
no_add:
    slli t3, t3, 1
    srli t5, t5, 1
    addi a2, a2, -1
    j bit_loop
bit_done:
    add s1, s1, t6
    addi t0, t0, 1
    j pair_loop
mul_done:
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall
"""


def _multiply_exit(scale: float) -> int:
    pairs = max(32, int(150 * scale))
    a = Lcg(71).values(pairs, 1 << 16)
    b = Lcg(73).values(pairs, 1 << 16)
    total = sum(x * (y & 0xFFFF) for x, y in zip(a, b))
    return total % 4096


# ---------------------------------------------------------------------------
# dhrystone — synthetic mixed-op benchmark, high IPC (§V-A)
# ---------------------------------------------------------------------------

def _dhrystone_source(scale: float) -> str:
    iterations = max(50, int(300 * scale))
    return f"""
.data
record_a: .dword 1, 2, 3, 4, 5
record_b: .space 40
glob:     .dword 0
.text
_start:
    li s0, {iterations}
    li s1, 0                  # iteration
    li s2, 0                  # checksum
dh_loop:
    bge s1, s0, dh_done
    call proc_copy
    # integer arithmetic block
    addi t0, s1, 7
    slli t1, t0, 2
    sub t2, t1, s1
    andi t3, t2, 255
    add s2, s2, t3
    # conditional chain (mostly predictable)
    andi t4, s1, 3
    beqz t4, dh_case0
    li t5, 1
    beq t4, t5, dh_case1
    addi s2, s2, 2
    j dh_next
dh_case0:
    addi s2, s2, 5
    j dh_next
dh_case1:
    addi s2, s2, 3
dh_next:
    la t6, glob
    ld a2, 0(t6)
    add a2, a2, s2
    sd a2, 0(t6)
    addi s1, s1, 1
    j dh_loop
dh_done:
    li t0, 4096
    remu a0, s2, t0
    li a7, 93
    ecall

proc_copy:
    # copy a 5-dword record (struct assignment in Dhrystone)
    la t0, record_a
    la t1, record_b
    ld t2, 0(t0)
    sd t2, 0(t1)
    ld t2, 8(t0)
    sd t2, 8(t1)
    ld t2, 16(t0)
    sd t2, 16(t1)
    ld t2, 24(t0)
    sd t2, 24(t1)
    ld t2, 32(t0)
    sd t2, 32(t1)
    ret
"""


def _dhrystone_exit(scale: float) -> int:
    iterations = max(50, int(300 * scale))
    checksum = 0
    for i in range(iterations):
        checksum += ((i + 7) << 2) - i & 255
        case = i & 3
        checksum += 5 if case == 0 else 3 if case == 1 else 2
    return checksum % 4096


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

def _register_all() -> None:
    specs = [
        ("mergesort", _mergesort_source, _mergesort_exit,
         "bottom-up merge sort (the motivating example of §III)"),
        ("qsort", _qsort_source, _qsort_exit,
         "iterative quicksort; unpredictable pivot branch"),
        ("rsort", _rsort_source, _rsort_exit,
         "LSD radix sort; loop-centric, near-ideal IPC"),
        ("memcpy", _memcpy_source, _memcpy_exit,
         "streaming 32 KiB copy; Memory-Bound standout"),
        ("mm", _mm_source, _mm_exit,
         "double-precision matrix multiply (FP queue pressure)"),
        ("vvadd", _vvadd_source, _vvadd_exit,
         "streaming vector add"),
        ("spmv", _spmv_source, _spmv_exit,
         "CSR sparse matrix-vector product (irregular gathers)"),
        ("towers", _towers_source, _towers_exit,
         "recursive Towers of Hanoi (call/return, RAS)"),
        ("median", _median_source, _median_exit,
         "3-point median filter (branchy compare tree)"),
        ("multiply", _multiply_source, _multiply_exit,
         "software shift-add multiply (serial dependencies)"),
        ("dhrystone", _dhrystone_source, _dhrystone_exit,
         "synthetic mixed-op benchmark; high IPC"),
    ]
    for name, builder, exit_fn, description in specs:
        register(Workload(
            name=name, category="micro", source_builder=builder,
            description=description, expected_exit=exit_fn))


_register_all()
