"""Workload registry: every benchmark the evaluation uses, by name.

A workload is a function from a *scale* factor to assembly source; the
registry assembles and functionally executes on demand, caching both per
process (the trace of a workload at a given scale never changes).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..isa import DynamicTrace, Program, assemble, execute, execute_compiled
from . import trace_cache

#: Engine selector: "compiled" (closure-compiled, memoized, columnar) is
#: the production default; "interpreted" keeps the original
#: FunctionalExecutor as the always-available reference oracle.
ENGINE_ENV = "REPRO_EXEC_ENGINE"
_ENGINES = ("compiled", "interpreted")


@dataclass(frozen=True)
class Workload:
    """One registered benchmark.

    Attributes:
        name: registry key (e.g. ``"mergesort"`` or ``"505.mcf_r"``).
        category: ``micro``, ``spec``, or ``case-study``.
        source_builder: callable producing assembly text for a scale.
        description: one-line summary shown in reports.
        expected_exit: callable producing the exit code the kernel must
            produce at a given scale (``None`` to skip the check).
    """

    name: str
    category: str
    source_builder: Callable[[float], str]
    description: str = ""
    expected_exit: Optional[Callable[[float], int]] = None


#: The long-trace tier: workloads too slow for full serial simulation.
#: They are excluded from default registry enumeration and runnable
#: only through the windowed/sampled paths (``run_core(windows=...)``).
HUGE_CATEGORY = "huge"


#: Reserved pseudo-workload name meaning "this core slot is unused".
#: Multicore scenarios accept it wherever a workload name is expected;
#: it never reaches :func:`build_trace` (an idle slot instantiates no
#: core at all), so it is deliberately *not* a registry entry.
IDLE_WORKLOAD = "idle"


def is_idle(name: str) -> bool:
    """True when *name* is the reserved idle pseudo-workload."""
    return name == IDLE_WORKLOAD


_REGISTRY: Dict[str, Workload] = {}
_PROGRAM_CACHE: Dict[Tuple[str, float], Program] = {}
_TRACE_CACHE: Dict[Tuple[str, float], DynamicTrace] = {}


def register(workload: Workload) -> Workload:
    """Add *workload* to the registry (name must be unique)."""
    if is_idle(workload.name):
        raise ValueError(
            f"workload name {IDLE_WORKLOAD!r} is reserved for idle "
            f"multicore slots")
    if workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} already registered")
    _REGISTRY[workload.name] = workload
    return workload


def workload_names(category: Optional[str] = None) -> List[str]:
    """All registered names, optionally filtered by category.

    The default (``category=None``) deliberately *excludes* the
    :data:`HUGE_CATEGORY` tier: huge workloads are gated to the
    windowed/sampled simulation paths, so they must never ride into
    full-registry enumerations (tier-1 suites, default sweeps)
    implicitly.  Ask for them explicitly with ``category="huge"``.
    """
    _ensure_loaded()
    if category is None:
        return sorted(name for name, w in _REGISTRY.items()
                      if w.category != HUGE_CATEGORY)
    return sorted(name for name, w in _REGISTRY.items()
                  if w.category == category)


def workload_category(name: str) -> str:
    """The registry category of *name* (KeyError on unknown names)."""
    return get_workload(name).category


def get_workload(name: str) -> Workload:
    """Look up a workload; raises KeyError with suggestions."""
    _ensure_loaded()
    if name not in _REGISTRY:
        if is_idle(name):
            raise KeyError(
                f"{IDLE_WORKLOAD!r} is the reserved idle slot marker, "
                f"not a runnable workload")
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name]


def build_program(name: str, scale: float = 1.0) -> Program:
    """Assemble the workload (cached per (name, scale))."""
    key = (name, scale)
    if key not in _PROGRAM_CACHE:
        workload = get_workload(name)
        source = workload.source_builder(scale)
        _PROGRAM_CACHE[key] = assemble(source, name=name)
    return _PROGRAM_CACHE[key]


def _engine(override: Optional[str] = None) -> str:
    engine = override or os.environ.get(ENGINE_ENV, "compiled") or "compiled"
    engine = engine.strip().lower()
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown execution engine {engine!r}; known: {_ENGINES}")
    return engine


def _verify_exit(name: str, scale: float, trace) -> None:
    workload = get_workload(name)
    if workload.expected_exit is not None:
        expected = workload.expected_exit(scale)
        if trace.exit_code != expected:
            raise AssertionError(
                f"workload {name!r} exited with {trace.exit_code}, "
                f"expected {expected}")


def build_trace(name: str, scale: float = 1.0,
                engine: Optional[str] = None) -> DynamicTrace:
    """Assemble and functionally execute the workload (cached).

    The default ``compiled`` engine runs the closure-compiled executor
    and memoizes the columnar trace through
    :mod:`repro.workloads.trace_cache` (in-memory LRU + shared disk
    tier), so sweeps and service bursts execute each workload
    functionally once.  ``engine="interpreted"`` (or env
    ``REPRO_EXEC_ENGINE=interpreted``) forces the reference
    :class:`~repro.isa.executor.FunctionalExecutor` path.

    Either way the workload's ``expected_exit`` code is verified, so a
    broken kernel fails loudly instead of producing a meaningless
    characterization.
    """
    get_workload(name)  # fail fast on unknown names
    if _engine(engine) == "compiled":
        trace = trace_cache.get(
            name, scale,
            lambda: execute_compiled(build_program(name, scale)))
        _verify_exit(name, scale, trace)
        return trace
    key = (name, scale)
    if key not in _TRACE_CACHE:
        trace = execute(build_program(name, scale))
        _verify_exit(name, scale, trace)
        _TRACE_CACHE[key] = trace
    return _TRACE_CACHE[key]


def clear_caches() -> None:
    """Drop cached programs/traces (mostly for tests)."""
    _PROGRAM_CACHE.clear()
    _TRACE_CACHE.clear()
    trace_cache.clear_memory()


_LOADED = False


def _ensure_loaded() -> None:
    """Import the workload modules so their register() calls run."""
    global _LOADED
    if not _LOADED:
        from . import casestudy, huge, micro, spec  # noqa: F401
        _LOADED = True
