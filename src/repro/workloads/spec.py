"""SPEC CPU2017 intrate *proxies* (substitution documented in DESIGN.md).

SPEC sources and inputs are proprietary, so each benchmark is replaced by
a synthetic kernel engineered to exercise the same dominant bottleneck
the paper (and the wider literature) reports for it on an OoO core:

==================  =====================================================
505.mcf_r           cold pointer chasing -> ~80% Backend, Memory Bound
523.xalancbmk_r     hash-bucket record probes -> ~80% Backend, Memory
541.leela_r         pseudo-random playout branches -> Bad Spec + Core
525.x264_r          unrolled SAD/abs compute -> high Retiring, notable
                    Bad Speculation from data-dependent selections
548.exchange2_r     recursive permutation search -> high Retiring, Core
500.perlbench_r     indirect-dispatch interpreter with a >32 KiB hot
                    code footprint -> Bad Spec + visible Frontend
502.gcc_r           tree-walk with per-node opcode switch -> mixed
520.omnetpp_r       binary-heap event queue -> Memory + Bad Spec mix
531.deepsjeng_r     24 KiB transposition table probes -> L1D-size
                    sensitive (Rocket CS1 uses 16 vs 32 KiB)
557.xz_r            byte-wise match loops -> mixed Memory + Bad Spec
==================  =====================================================

Every proxy has a Python twin that computes the expected exit checksum,
so functional correctness of the assembly is verified on every build.
"""

from __future__ import annotations

from typing import List, Tuple

from .data import Lcg, dwords, ring_permutation
from .registry import Workload, register

_MASK64 = (1 << 64) - 1


# ---------------------------------------------------------------------------
# 505.mcf_r — cold pointer chase
# ---------------------------------------------------------------------------

def _mcf_params(scale: float) -> Tuple[int, int]:
    nodes = max(4096, int(32768 * scale))
    hops = max(300, int(1100 * scale))
    return nodes, hops


# Per-hop "arc cost" computation: real mcf does integer arithmetic on
# every visited node, which is what keeps its Backend share near (not
# at) 100%.  Two chains are chased in parallel for realistic MLP.
_MCF_COST_BLOCK = """
    add a4, t0, s4
    slli a5, a4, 3
    sub a5, a5, t0
    xor a6, a5, a4
    andi a6, a6, 2047
    add s1, s1, a6
    add a4, s4, t0
    srli a5, a4, 2
    add a5, a5, a4
    xori a5, a5, 0x2A
    andi a5, a5, 1023
    add s1, s1, a5
"""


def _mcf_source(scale: float) -> str:
    nodes, hops = _mcf_params(scale)
    ring = ring_permutation(nodes, seed=7)
    half = nodes // 2
    return f"""
.data
{dwords("ring", ring)}
.text
_start:
    la a0, ring
    li s0, {hops}
    li t0, 0                  # chain A: current node
    li s4, {half}             # chain B: current node
    li s1, 0                  # accumulator
    li t1, 0                  # hop count
chase_loop:
    bge t1, s0, chase_done
{_MCF_COST_BLOCK}
    slli t2, t0, 3
    add t2, a0, t2
    ld t0, 0(t2)              # chain A pointer load
    slli t3, s4, 3
    add t3, a0, t3
    ld s4, 0(t3)              # chain B pointer load
    addi t1, t1, 1
    j chase_loop
chase_done:
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall
"""


def _mcf_exit(scale: float) -> int:
    nodes, hops = _mcf_params(scale)
    ring = ring_permutation(nodes, seed=7)
    a = 0
    b = nodes // 2
    acc = 0
    for _ in range(hops):
        v1 = ((((a + b) << 3) - a) ^ (a + b)) & 2047
        acc += v1
        t = a + b
        v2 = (((t >> 2) + t) ^ 0x2A) & 1023
        acc += v2
        a = ring[a]
        b = ring[b]
    return acc % 4096


# ---------------------------------------------------------------------------
# 523.xalancbmk_r — hash-bucket record probes
# ---------------------------------------------------------------------------

def _xalanc_params(scale: float):
    buckets = 4096
    probes = max(150, int(650 * scale))
    rng = Lcg(101)
    bucket_rec = [rng.below(buckets) for _ in range(buckets)]
    # Each record is 8 dwords (one 64 B cache block).
    records = [rng.below(1000) for _ in range(buckets * 8)]
    probe_seq = [rng.below(buckets) for _ in range(probes)]
    return buckets, probes, bucket_rec, records, probe_seq


def _xalanc_source(scale: float) -> str:
    buckets, probes, bucket_rec, records, probe_seq = _xalanc_params(scale)
    return f"""
.data
{dwords("bucket_rec", bucket_rec)}
{dwords("records", records)}
{dwords("probe_seq", probe_seq)}
.text
_start:
    la a0, bucket_rec
    la a1, records
    la a2, probe_seq
    li s0, {probes}
    li s1, 0                  # checksum
    li s2, 4095               # hash mask (too wide for an andi imm)
    li t0, 0                  # probe index
probe_loop:
    bge t0, s0, probe_done
    slli t1, t0, 3
    add t1, a2, t1
    ld t2, 0(t1)              # bucket number
    slli t3, t2, 3
    add t3, a0, t3
    ld t4, 0(t3)              # record index (cold load #1)
    slli t5, t4, 6            # record offset (8 dwords)
    add t5, a1, t5
    ld t6, 0(t5)              # record key word 0 (cold load #2)
    ld a3, 8(t5)              # key word 1 (same block)
    add a4, t6, a3
    # string-hash style mixing on the fetched key (keeps Retiring > 0)
    slli a5, a4, 5
    add a5, a5, a4
    xor a5, a5, t6
    srli a6, a5, 3
    add a5, a5, a6
    and a5, a5, s2
    slli a6, a3, 2
    xor a6, a6, a5
    andi a6, a6, 2047
    add s1, s1, a4
    add s1, s1, a6
    addi t0, t0, 1
    j probe_loop
probe_done:
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall
"""


def _xalanc_exit(scale: float) -> int:
    buckets, probes, bucket_rec, records, probe_seq = _xalanc_params(scale)
    checksum = 0
    for i in range(probes):
        rec = bucket_rec[probe_seq[i]]
        key0 = records[rec * 8]
        key1 = records[rec * 8 + 1]
        a4 = key0 + key1
        a5 = ((a4 << 5) + a4) ^ key0
        a5 = (a5 + (a5 >> 3)) & 4095
        a6 = ((key1 << 2) ^ a5) & 2047
        checksum += a4 + a6
    return checksum % 4096


# ---------------------------------------------------------------------------
# 541.leela_r — pseudo-random playout branches
# ---------------------------------------------------------------------------

def _leela_params(scale: float):
    iterations = max(600, int(3000 * scale))
    board = Lcg(113).values(512, 64)
    return iterations, board


def _leela_source(scale: float) -> str:
    iterations, board = _leela_params(scale)
    return f"""
.data
{dwords("board", board)}
.text
_start:
    la a0, board
    li s0, {iterations}
    li s1, 0                  # checksum
    li s2, 0x9E3779B9         # LFSR-ish state seed
    li s3, 0                  # board cursor
    li t0, 0
play_loop:
    bge t0, s0, play_done
    # xorshift PRNG step
    slli t1, s2, 13
    xor s2, s2, t1
    srli t1, s2, 7
    xor s2, s2, t1
    slli t1, s2, 17
    xor s2, s2, t1
    # data-dependent decision branch (~75/25, partially learnable)
    andi t2, s2, 3
    bnez t2, play_pass
    # "move": read a board cell and fold it in
    slli t3, s3, 3
    add t3, a0, t3
    ld t4, 0(t3)
    add s1, s1, t4
    j play_next
play_pass:
    # "pass": update the cell instead
    slli t3, s3, 3
    add t3, a0, t3
    ld t4, 0(t3)
    addi t4, t4, 1
    sd t4, 0(t3)
play_next:
    # advance cursor with a small stride
    slli t5, s3, 2
    add t5, t5, s3
    addi t5, t5, 1
    andi s3, t5, 511
    addi t0, t0, 1
    j play_loop
play_done:
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall
"""


def _leela_exit(scale: float) -> int:
    iterations, board = _leela_params(scale)
    board = list(board)
    state = 0x9E3779B9
    checksum = 0
    cursor = 0
    for _ in range(iterations):
        state = (state ^ (state << 13)) & _MASK64
        state = (state ^ (state >> 7)) & _MASK64
        state = (state ^ (state << 17)) & _MASK64
        if not state & 3:
            checksum += board[cursor]
        else:
            board[cursor] += 1
        cursor = (cursor * 5 + 1) & 511
    return checksum % 4096


# ---------------------------------------------------------------------------
# 525.x264_r — unrolled SAD compute with data-dependent selection
# ---------------------------------------------------------------------------

def _x264_params(scale: float):
    blocks = max(120, int(600 * scale))
    ref = Lcg(127).values(512, 256)
    cur = Lcg(131).values(512, 256)
    return blocks, ref, cur


def _x264_source(scale: float) -> str:
    blocks, ref, cur = _x264_params(scale)
    # 8-wide unrolled absolute-difference row (branchless abs), then a
    # data-dependent best-block selection branch.
    unrolled = []
    for k in range(8):
        unrolled.append(f"""
    ld t1, {8 * k}(a3)
    ld t2, {8 * k}(a4)
    sub t3, t1, t2
    srai t4, t3, 63
    xor t3, t3, t4
    sub t3, t3, t4            # |ref - cur|
    add s4, s4, t3""")
    body = "".join(unrolled)
    return f"""
.data
{dwords("ref_px", ref)}
{dwords("cur_px", cur)}
.text
_start:
    la a0, ref_px
    la a1, cur_px
    li s0, {blocks}
    li s1, 0                  # checksum
    li s2, 0                  # previous block's SAD
    li s3, 2463534242         # row-picker xorshift state
    li t0, 0                  # block index
sad_loop:
    bge t0, s0, sad_done
    slli t5, s3, 13
    xor s3, s3, t5
    srli t5, s3, 7
    xor s3, s3, t5
    slli t5, s3, 17
    xor s3, s3, t5
    andi t5, s3, 63
    slli t5, t5, 6            # row offset: aperiodic row * 8 dwords
    add a3, a0, t5
    add a4, a1, t5
    li s4, 0                  # SAD accumulator
{body}
    add s1, s1, s4
    # data-dependent selections (the Bad-Speculation source the paper
    # flags for x264): best-block compare and a cost-parity path
    bge s4, s2, sad_second
    addi s1, s1, 13
sad_second:
    andi t6, s4, 1
    beqz t6, sad_next
    addi s1, s1, 7
sad_next:
    mv s2, s4
    addi t0, t0, 1
    j sad_loop
sad_done:
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall
"""


def _x264_exit(scale: float) -> int:
    blocks, ref, cur = _x264_params(scale)
    checksum = 0
    previous = 0
    state = 2463534242
    for block in range(blocks):
        state = (state ^ (state << 13)) & _MASK64
        state = (state ^ (state >> 7)) & _MASK64
        state = (state ^ (state << 17)) & _MASK64
        base = (state & 63) * 8
        sad = sum(abs(ref[base + k] - cur[base + k]) for k in range(8))
        checksum += sad
        if sad < previous:
            checksum += 13
        if sad & 1:
            checksum += 7
        previous = sad
    return checksum % 4096


# ---------------------------------------------------------------------------
# 548.exchange2_r — recursive permutation search (Heap's algorithm)
# ---------------------------------------------------------------------------

def _exchange2_source(scale: float) -> str:
    n = 6 if scale >= 0.75 else 5
    return f"""
.data
digits: .dword 3, 1, 4, 1, 5, 9, 2, 6
.text
_start:
    la s2, digits
    li s1, 0                  # checksum
    li a0, {n}
    call permute
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall

permute:
    addi sp, sp, -24
    sd ra, 0(sp)
    sd a0, 8(sp)
    sd s3, 16(sp)
    li t0, 1
    bgt a0, t0, perm_recurse
    # leaf: fold the first digits into the checksum
    ld t1, 0(s2)
    ld t2, 8(s2)
    slli t3, t1, 3
    add t3, t3, t2
    add s1, s1, t3
    j perm_done
perm_recurse:
    li s3, 0                  # i
perm_loop:
    ld a0, 8(sp)
    bge s3, a0, perm_done
    addi a0, a0, -1
    call permute
    ld a0, 8(sp)
    andi t0, a0, 1
    beqz t0, perm_even
    # odd n: swap digits[0] and digits[n-1]
    ld t1, 0(s2)
    addi t2, a0, -1
    slli t2, t2, 3
    add t2, s2, t2
    ld t3, 0(t2)
    sd t3, 0(s2)
    sd t1, 0(t2)
    j perm_advance
perm_even:
    # even n: swap digits[i] and digits[n-1]
    slli t1, s3, 3
    add t1, s2, t1
    ld t3, 0(t1)
    addi t2, a0, -1
    slli t2, t2, 3
    add t2, s2, t2
    ld t4, 0(t2)
    sd t4, 0(t1)
    sd t3, 0(t2)
perm_advance:
    addi s3, s3, 1
    j perm_loop
perm_done:
    ld ra, 0(sp)
    ld s3, 16(sp)
    addi sp, sp, 24
    ret
"""


def _exchange2_exit(scale: float) -> int:
    n = 6 if scale >= 0.75 else 5
    digits = [3, 1, 4, 1, 5, 9, 2, 6]
    checksum = 0

    def permute(k: int) -> None:
        nonlocal checksum
        if k <= 1:
            checksum += (digits[0] << 3) + digits[1]
            return
        for i in range(k):
            permute(k - 1)
            if k & 1:
                digits[0], digits[k - 1] = digits[k - 1], digits[0]
            else:
                digits[i], digits[k - 1] = digits[k - 1], digits[i]

    permute(n)
    return checksum % 4096


# ---------------------------------------------------------------------------
# 500.perlbench_r — indirect-dispatch interpreter, large code footprint
# ---------------------------------------------------------------------------

_PERL_HANDLERS = 192
_PERL_EXEC_INSTRS = 22        # executed instructions per handler
_PERL_PAD_INSTRS = 20         # never-executed padding (code footprint)


def _perl_params(scale: float):
    steps = max(200, int(800 * scale))
    # Real interpreters show opcode locality: runs of the same handler
    # keep the BTB's indirect target correct for a while, so only run
    # boundaries mispredict (~1/run_length of dispatches).
    rng = Lcg(139)
    opcodes = []
    while len(opcodes) < steps:
        opcode = rng.below(_PERL_HANDLERS)
        run = 6 + rng.below(10)
        opcodes.extend([opcode] * run)
    opcodes = opcodes[:steps]
    return steps, opcodes


def _perl_source(scale: float) -> str:
    steps, opcodes = _perl_params(scale)
    handlers = []
    table_init = []
    for h in range(_PERL_HANDLERS):
        table_init.append(f"""
    la t1, handler_{h}
    sd t1, {8 * h}(t0)""")
        const = (h * 2654435761) & 0xFFF
        body = [f"handler_{h}:"]
        body.append(f"    li t2, {const}")
        body.append("    add s1, s1, t2")
        body.append(f"    xori t3, s1, {h & 0x7FF}")
        body.append("    andi t3, t3, 2047")
        body.append("    add s1, s1, t3")
        # Straight-line filler to reach the executed-instruction budget.
        for k in range(_PERL_EXEC_INSTRS - 7):
            body.append(f"    addi t4, t2, {k + 1}")
        body.append("    add s1, s1, t4")
        body.append("    ret")
        for _ in range(_PERL_PAD_INSTRS):
            body.append("    nop")  # padding: grows the code footprint
        handlers.append("\n".join(body))
    return f"""
.data
{dwords("op_seq", opcodes)}
htab: .space {8 * _PERL_HANDLERS}
.text
_start:
    # build the handler-address table (once)
    la t0, htab
{"".join(table_init)}
    la a0, op_seq
    la a1, htab
    li s0, {steps}
    li s1, 0                  # checksum
    li s2, 0                  # step
dispatch_loop:
    bge s2, s0, dispatch_done
    slli t0, s2, 3
    add t0, a0, t0
    ld t1, 0(t0)              # opcode
    slli t1, t1, 3
    add t1, a1, t1
    ld t2, 0(t1)              # handler address
    jalr ra, t2, 0            # indirect dispatch (mostly mispredicted)
    addi s2, s2, 1
    j dispatch_loop
dispatch_done:
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall

{chr(10).join(handlers)}
"""


def _perl_exit(scale: float) -> int:
    steps, opcodes = _perl_params(scale)
    checksum = 0
    for op in opcodes:
        const = (op * 2654435761) & 0xFFF
        checksum = (checksum + const) & _MASK64
        t3 = (checksum ^ (op & 0x7FF)) & 2047
        checksum = (checksum + t3) & _MASK64
        t4 = (const + (_PERL_EXEC_INSTRS - 7)) & _MASK64
        checksum = (checksum + t4) & _MASK64
    return checksum % 4096


# ---------------------------------------------------------------------------
# 502.gcc_r — tree walk with per-node opcode switch
# ---------------------------------------------------------------------------

def _gcc_params(scale: float):
    nodes = max(512, int(4096 * scale))
    visits = max(400, int(1800 * scale))
    rng = Lcg(149)
    ops = [rng.below(4) for _ in range(nodes)]
    left = [rng.below(nodes) for _ in range(nodes)]
    right = [rng.below(nodes) for _ in range(nodes)]
    return nodes, visits, ops, left, right


def _gcc_source(scale: float) -> str:
    nodes, visits, ops, left, right = _gcc_params(scale)
    return f"""
.data
{dwords("node_op", ops)}
{dwords("node_left", left)}
{dwords("node_right", right)}
.text
_start:
    la a0, node_op
    la a1, node_left
    la a2, node_right
    li s0, {visits}
    li s1, 0                  # checksum
    li s2, 0                  # current node
    li t0, 0                  # visit count
walk_loop:
    bge t0, s0, walk_done
    slli t1, s2, 3
    add t2, a0, t1
    ld t3, 0(t2)              # op (0..3)
    beqz t3, op_const
    li t4, 1
    beq t3, t4, op_add
    li t4, 2
    beq t3, t4, op_mul
    # op 3: xor fold
    xori t5, s2, 0x155
    add s1, s1, t5
    add t6, a2, t1
    ld s2, 0(t6)              # go right
    j walk_next
op_const:
    addi s1, s1, 17
    add t6, a1, t1
    ld s2, 0(t6)              # go left
    j walk_next
op_add:
    add s1, s1, s2
    add t6, a1, t1
    ld s2, 0(t6)
    j walk_next
op_mul:
    slli t5, s2, 1
    add s1, s1, t5
    add t6, a2, t1
    ld s2, 0(t6)
walk_next:
    addi t0, t0, 1
    j walk_loop
walk_done:
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall
"""


def _gcc_exit(scale: float) -> int:
    nodes, visits, ops, left, right = _gcc_params(scale)
    checksum = 0
    node = 0
    for _ in range(visits):
        op = ops[node]
        if op == 0:
            checksum += 17
            node = left[node]
        elif op == 1:
            checksum += node
            node = left[node]
        elif op == 2:
            checksum += node << 1
            node = right[node]
        else:
            checksum += node ^ 0x155
            node = right[node]
    return checksum % 4096


# ---------------------------------------------------------------------------
# 520.omnetpp_r — binary-heap event queue
# ---------------------------------------------------------------------------

def _omnetpp_params(scale: float):
    heap_size = 4096
    events = max(80, int(260 * scale))
    keys = Lcg(151).values(heap_size, 1 << 20)
    replacements = Lcg(157).values(events, 1 << 20)
    return heap_size, events, keys, replacements


def _heapify(keys: List[int]) -> List[int]:
    heap = list(keys)
    n = len(heap)
    for start in range(n // 2 - 1, -1, -1):
        _sift_down(heap, start, n)
    return heap


def _sift_down(heap: List[int], pos: int, n: int) -> None:
    while True:
        child = 2 * pos + 1
        if child >= n:
            return
        if child + 1 < n and heap[child + 1] < heap[child]:
            child += 1
        if heap[child] >= heap[pos]:
            return
        heap[pos], heap[child] = heap[child], heap[pos]
        pos = child


def _omnetpp_source(scale: float) -> str:
    heap_size, events, keys, replacements = _omnetpp_params(scale)
    heap = _heapify(keys)
    return f"""
.data
{dwords("heap", heap)}
{dwords("repl", replacements)}
.text
_start:
    la a0, heap
    la a1, repl
    li s0, {events}
    li s2, {heap_size}
    li s1, 0                  # checksum
    li t0, 0                  # event count
ev_loop:
    bge t0, s0, ev_done
    # pop-min: fold root key, replace with the next arrival, sift down
    ld t1, 0(a0)
    add s1, s1, t1
    slli t2, t0, 3
    add t2, a1, t2
    ld t3, 0(t2)              # replacement key
    sd t3, 0(a0)
    li t4, 0                  # pos
sift_loop:
    slli t5, t4, 1
    addi t5, t5, 1            # child = 2*pos + 1
    bge t5, s2, sift_done
    slli t6, t5, 3
    add t6, a0, t6
    ld a2, 0(t6)              # heap[child]
    addi a3, t5, 1
    bge a3, s2, no_sibling
    ld a4, 8(t6)              # heap[child + 1]
    bge a4, a2, no_sibling
    mv a2, a4
    mv t5, a3
no_sibling:
    slli a5, t4, 3
    add a5, a0, a5
    ld a6, 0(a5)              # heap[pos]
    bge a2, a6, sift_done     # heap property restored
    # swap pos <-> child
    slli t6, t5, 3
    add t6, a0, t6
    sd a6, 0(t6)
    sd a2, 0(a5)
    mv t4, t5
    j sift_loop
sift_done:
    addi t0, t0, 1
    j ev_loop
ev_done:
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall
"""


def _omnetpp_exit(scale: float) -> int:
    heap_size, events, keys, replacements = _omnetpp_params(scale)
    heap = _heapify(keys)
    checksum = 0
    for i in range(events):
        checksum += heap[0]
        heap[0] = replacements[i]
        _sift_down(heap, 0, heap_size)
    return checksum % 4096


# ---------------------------------------------------------------------------
# 531.deepsjeng_r — transposition-table probes (L1D-size sensitive)
# ---------------------------------------------------------------------------

_SJENG_TABLE_DWORDS = 3072    # 24 KiB: fits 32 KiB L1D, thrashes 16 KiB


def _deepsjeng_params(scale: float):
    iterations = max(600, int(2600 * scale))
    table = Lcg(163).values(_SJENG_TABLE_DWORDS, 1 << 30)
    return iterations, table


def _deepsjeng_source(scale: float) -> str:
    iterations, table = _deepsjeng_params(scale)
    return f"""
.data
{dwords("ttable", table)}
.text
_start:
    la a0, ttable
    li s0, {iterations}
    li s1, 0                  # checksum
    li s2, 88172645463325252  # hash state
    li s3, {_SJENG_TABLE_DWORDS}
    li s5, 65535
    li t0, 0
probe_loop:
    bge t0, s0, probe_done
    # xorshift64 hash step
    slli t1, s2, 13
    xor s2, s2, t1
    srli t1, s2, 7
    xor s2, s2, t1
    slli t1, s2, 17
    xor s2, s2, t1
    # index = ((state >> 16) & 0xFFFF) * size >> 16  (mul-shift range
    # reduction; chess hashes avoid division)
    srli t2, s2, 16
    and t2, t2, s5
    mul t2, t2, s3
    srli t2, t2, 16
    slli t2, t2, 3
    add t2, a0, t2
    ld t3, 0(t2)              # transposition-table probe
    # evaluation: biased cutoff branch (~25% taken, mispredicts some)
    andi t4, t3, 3
    beqz t4, probe_even
    add s1, s1, t3
    j probe_store
probe_even:
    sub s1, s1, t3
probe_store:
    # age the entry on every 4th probe
    andi t5, t0, 3
    bnez t5, probe_next
    addi t3, t3, 1
    sd t3, 0(t2)
probe_next:
    addi t0, t0, 1
    j probe_loop
probe_done:
    li t0, 4096
    # fold to a non-negative exit code
    srai t1, s1, 63
    xor s1, s1, t1
    sub s1, s1, t1
    remu a0, s1, t0
    li a7, 93
    ecall
"""


def _deepsjeng_exit(scale: float) -> int:
    iterations, table = _deepsjeng_params(scale)
    table = list(table)
    state = 88172645463325252
    checksum = 0
    for i in range(iterations):
        state = (state ^ (state << 13)) & _MASK64
        state = (state ^ (state >> 7)) & _MASK64
        state = (state ^ (state << 17)) & _MASK64
        index = (((state >> 16) & 0xFFFF) * _SJENG_TABLE_DWORDS) >> 16
        entry = table[index]
        if entry & 3:
            checksum += entry
        else:
            checksum -= entry
        if i & 3 == 0:
            table[index] = entry + 1
    return (abs(checksum)) % 4096


# ---------------------------------------------------------------------------
# 557.xz_r — byte-wise match loops over a dictionary window
# ---------------------------------------------------------------------------

def _xz_params(scale: float):
    window_bytes = 49152     # 48 KiB
    matches = max(250, int(1100 * scale))
    rng = Lcg(167)
    window = [rng.below(8) for _ in range(window_bytes)]  # small alphabet
    positions = [rng.below(window_bytes - 64)
                 for _ in range(2 * matches)]
    return window_bytes, matches, window, positions


def _xz_source(scale: float) -> str:
    window_bytes, matches, window, positions = _xz_params(scale)
    window_data = "window:\n" + "\n".join(
        "    .byte " + ", ".join(str(b) for b in window[i:i + 16])
        for i in range(0, window_bytes, 16))
    return f"""
.data
{window_data}
{dwords("positions", positions)}
.text
_start:
    la a0, window
    la a1, positions
    li s0, {matches}
    li s1, 0                  # checksum
    li t0, 0                  # match index
match_loop:
    bge t0, s0, match_done
    slli t1, t0, 4            # two positions per match
    add t1, a1, t1
    ld t2, 0(t1)              # pos1
    ld t3, 8(t1)              # pos2
    add t2, a0, t2
    add t3, a0, t3
    li t4, 0                  # match length
len_loop:
    li t5, 32
    bge t4, t5, len_done
    add t6, t2, t4
    lbu a2, 0(t6)
    add a3, t3, t4
    lbu a4, 0(a3)
    bne a2, a4, len_done      # data-dependent exit (~unpredictable)
    addi t4, t4, 1
    j len_loop
len_done:
    add s1, s1, t4
    addi t0, t0, 1
    j match_loop
match_done:
    li t0, 4096
    remu a0, s1, t0
    li a7, 93
    ecall
"""


def _xz_exit(scale: float) -> int:
    window_bytes, matches, window, positions = _xz_params(scale)
    checksum = 0
    for m in range(matches):
        p1, p2 = positions[2 * m], positions[2 * m + 1]
        length = 0
        while length < 32 and window[p1 + length] == window[p2 + length]:
            length += 1
        checksum += length
    return checksum % 4096


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

SPEC_INTRATE = [
    "500.perlbench_r", "502.gcc_r", "505.mcf_r", "520.omnetpp_r",
    "523.xalancbmk_r", "525.x264_r", "531.deepsjeng_r", "541.leela_r",
    "548.exchange2_r", "557.xz_r",
]


def _register_all() -> None:
    specs = [
        ("500.perlbench_r", _perl_source, _perl_exit,
         "indirect-dispatch interpreter, >32 KiB hot code footprint"),
        ("502.gcc_r", _gcc_source, _gcc_exit,
         "tree walk with per-node opcode switch"),
        ("505.mcf_r", _mcf_source, _mcf_exit,
         "cold pointer chase (memory-bound standout)"),
        ("520.omnetpp_r", _omnetpp_source, _omnetpp_exit,
         "binary-heap event queue simulation"),
        ("523.xalancbmk_r", _xalanc_source, _xalanc_exit,
         "hash-bucket record probes"),
        ("525.x264_r", _x264_source, _x264_exit,
         "unrolled SAD compute with data-dependent selection"),
        ("531.deepsjeng_r", _deepsjeng_source, _deepsjeng_exit,
         "transposition-table probes (L1D-size sensitive)"),
        ("541.leela_r", _leela_source, _leela_exit,
         "pseudo-random playout branches"),
        ("548.exchange2_r", _exchange2_source, _exchange2_exit,
         "recursive permutation search"),
        ("557.xz_r", _xz_source, _xz_exit,
         "byte-wise match loops over a dictionary window"),
    ]
    for name, builder, exit_fn, description in specs:
        register(Workload(
            name=name, category="spec", source_builder=builder,
            description=description, expected_exit=exit_fn))


_register_all()
