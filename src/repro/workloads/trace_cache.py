"""Cross-config functional trace memoization: memory + disk tiers.

A (workload × core-config) sweep re-uses one functional trace per
workload across every config point, and a burst of service jobs re-uses
it across every job — the trace depends only on ``(workload,
input-seed/scale, isa options)``, never on the core config.  This
module memoizes packed :class:`~repro.isa.columnar.ColumnarTrace`
values behind that key in two bounded tiers:

- an **in-memory LRU** (per process; bounded entry count), and
- a **disk tier** under ``<result cache dir>/traces`` holding the
  :meth:`~repro.isa.columnar.ColumnarTrace.pack` bytes, shared by every
  worker process of a sweep or service instance (atomic tmp+rename
  writes; LRU-pruned by entry count).

Keying rules: the cache key hashes the workload name, the scale (the
suite's input seed — workloads are deterministic functions of it), and
a fingerprint of every module whose source influences functional
semantics (assembler, instruction specs, executor, compiler, columnar
codec, workload generators).  Editing any of those invalidates every
entry automatically; core-config fields are deliberately *excluded* so
a 64-point sweep executes each workload functionally once.

Environment knobs::

    REPRO_TRACE_CACHE=0             disable the disk tier
    REPRO_TRACE_CACHE_MEM=64        in-memory LRU entries
    REPRO_TRACE_CACHE_ENTRIES=512   disk-tier entry budget (LRU prune)

Hit/miss counters are process-local; :func:`stats` snapshots them so
runners can attach per-run deltas to outcomes and ship them back to
the parent / service metrics registry.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from ..isa.columnar import ColumnarTrace, unpack

_DISK_ENV = "REPRO_TRACE_CACHE"
_MEM_LIMIT_ENV = "REPRO_TRACE_CACHE_MEM"
_DISK_LIMIT_ENV = "REPRO_TRACE_CACHE_ENTRIES"

_DEFAULT_MEM_ENTRIES = 64
_DEFAULT_DISK_ENTRIES = 512

#: Modules whose source defines functional-trace semantics; editing any
#: of them must invalidate every memoized trace.
_FINGERPRINT_MODULES = (
    "repro.isa.assembler", "repro.isa.instructions", "repro.isa.executor",
    "repro.isa.compiler", "repro.isa.columnar", "repro.isa.memory",
    "repro.workloads.micro", "repro.workloads.spec",
    "repro.workloads.casestudy", "repro.workloads.data",
)

_STAT_KEYS = ("mem_hits", "disk_hits", "misses", "disk_corrupt")

#: Disk-entry envelope: magic + sha256(payload)[:16] + packed payload.
#: ``unpack`` alone cannot detect a flipped bit inside column bytes
#: (the codec has magic and length checks but no content digest), so
#: the disk tier wraps entries in its own checksum — any single-byte
#: damage fails verification and is quarantined as a miss.
_ENVELOPE_MAGIC = b"TCK1"
_ENVELOPE_DIGEST_BYTES = 16


def _seal(payload: bytes) -> bytes:
    digest = hashlib.sha256(payload).digest()[:_ENVELOPE_DIGEST_BYTES]
    return _ENVELOPE_MAGIC + digest + payload


def _unseal(data: bytes) -> bytes:
    """Verified payload bytes; raises ValueError on any damage."""
    if not data.startswith(_ENVELOPE_MAGIC):
        raise ValueError("trace-cache entry missing envelope magic")
    start = len(_ENVELOPE_MAGIC) + _ENVELOPE_DIGEST_BYTES
    stored = data[len(_ENVELOPE_MAGIC):start]
    payload = data[start:]
    actual = hashlib.sha256(payload).digest()[:_ENVELOPE_DIGEST_BYTES]
    if stored != actual:
        raise ValueError("trace-cache entry failed its checksum")
    return payload

_lock = threading.Lock()
_mem: "OrderedDict[Tuple[str, float], ColumnarTrace]" = OrderedDict()
_stats: Dict[str, int] = {key: 0 for key in _STAT_KEYS}
_fingerprint: Optional[str] = None


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 0 else default


def disk_enabled() -> bool:
    """False when ``REPRO_TRACE_CACHE=0`` turns the disk tier off."""
    return os.environ.get(_DISK_ENV, "1").strip() not in ("0", "off", "no")


def trace_dir() -> Path:
    """Disk-tier directory (inherits ``REPRO_CACHE_DIR`` isolation)."""
    from ..tools.cache import cache_dir

    return cache_dir() / "traces"


def fingerprint() -> str:
    """Hash of every functional-semantics module's source."""
    global _fingerprint
    if _fingerprint is None:
        digest = hashlib.sha256()
        for module_name in _FINGERPRINT_MODULES:
            module = importlib.import_module(module_name)
            path = getattr(module, "__file__", None)
            if path and os.path.exists(path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _fingerprint = digest.hexdigest()[:16]
    return _fingerprint


def trace_key(workload: str, scale: float) -> str:
    """Disk-tier key: (workload, input scale, semantics fingerprint)."""
    digest = hashlib.sha256()
    digest.update(fingerprint().encode())
    digest.update(workload.encode())
    digest.update(f"{scale:.6f}".encode())
    return digest.hexdigest()[:24]


def entry_path(workload: str, scale: float) -> Path:
    return trace_dir() / f"{trace_key(workload, scale)}.ctrc"


# ----------------------------------------------------------------------
# stats


def stats() -> Dict[str, int]:
    """Snapshot of the process-local hit/miss counters."""
    with _lock:
        return dict(_stats)


def stats_delta(before: Dict[str, int],
                after: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    """Counter movement between two :func:`stats` snapshots."""
    if after is None:
        after = stats()
    return {key: after.get(key, 0) - before.get(key, 0)
            for key in _STAT_KEYS}


def hit_rate(counters: Dict[str, int]) -> float:
    """Fraction of lookups served by either tier (0.0 when idle)."""
    hits = counters.get("mem_hits", 0) + counters.get("disk_hits", 0)
    total = hits + counters.get("misses", 0)
    return hits / total if total else 0.0


def _bump(key: str) -> None:
    with _lock:
        _stats[key] = _stats.get(key, 0) + 1


# ----------------------------------------------------------------------
# tiers


def _mem_get(key: Tuple[str, float]) -> Optional[ColumnarTrace]:
    with _lock:
        trace = _mem.get(key)
        if trace is not None:
            _mem.move_to_end(key)
        return trace


def _mem_put(key: Tuple[str, float], trace: ColumnarTrace) -> None:
    limit = _env_int(_MEM_LIMIT_ENV, _DEFAULT_MEM_ENTRIES)
    with _lock:
        _mem[key] = trace
        _mem.move_to_end(key)
        while len(_mem) > max(1, limit):
            _mem.popitem(last=False)


def _disk_get(workload: str, scale: float) -> Optional[ColumnarTrace]:
    if not disk_enabled():
        return None
    path = entry_path(workload, scale)
    try:
        data = path.read_bytes()
    except OSError:
        return None
    try:
        trace = unpack(_unseal(data))
    except Exception:  # noqa: BLE001 - any damage is a miss, never a crash
        # Corrupt/truncated entry (bad magic, garbled header, codec or
        # unpickling error — ``unpack`` wraps known damage in
        # ExecutionError, but *nothing* a rotten byte stream can raise
        # may propagate to the runner): quarantine the entry — delete
        # it, count it — and report a miss so the caller re-executes
        # and repopulates the slot.
        _bump("disk_corrupt")
        try:
            os.remove(path)
        except OSError:
            pass
        return None
    try:
        os.utime(path)  # LRU touch for the entry-count prune
    except OSError:
        pass
    return trace


def _disk_put(workload: str, scale: float, trace: ColumnarTrace) -> None:
    if not disk_enabled():
        return
    from ..chaos import injector as chaos

    directory = trace_dir()
    try:
        data = chaos.mangle_write("trace-cache",
                                  trace_key(workload, scale),
                                  _seal(trace.pack()))
        directory.mkdir(parents=True, exist_ok=True)
        path = entry_path(workload, scale)
        tmp_path = path.with_suffix(f".{os.getpid()}.tmp")
        tmp_path.write_bytes(data)
        os.replace(tmp_path, path)
    except OSError:
        return  # the disk tier is an optimization, never a failure
    prune(max_entries=_env_int(_DISK_LIMIT_ENV, _DEFAULT_DISK_ENTRIES))


def prune(max_entries: Optional[int] = None) -> int:
    """Evict least-recently-used disk entries beyond *max_entries*."""
    if max_entries is None:
        max_entries = _env_int(_DISK_LIMIT_ENV, _DEFAULT_DISK_ENTRIES)
    directory = trace_dir()
    if not directory.is_dir():
        return 0
    entries = []
    for path in directory.glob("*.ctrc"):
        try:
            entries.append((path.stat().st_mtime, path))
        except OSError:
            continue
    entries.sort()  # oldest mtime first
    evicted = 0
    while len(entries) - evicted > max(1, max_entries):
        _, path = entries[evicted]
        try:
            os.remove(path)
        except OSError:
            pass
        evicted += 1
    return evicted


# ----------------------------------------------------------------------
# the memoized lookup


def get(workload: str, scale: float,
        builder: Callable[[], ColumnarTrace]) -> ColumnarTrace:
    """Memoized functional trace for ``(workload, scale)``.

    Lookup order: in-memory LRU, then the shared disk tier, then
    *builder* (functional execution), publishing the result to both
    tiers.  Counters record which tier served each call.
    """
    key = (workload, scale)
    trace = _mem_get(key)
    if trace is not None:
        _bump("mem_hits")
        return trace
    trace = _disk_get(workload, scale)
    if trace is not None:
        _bump("disk_hits")
        _mem_put(key, trace)
        return trace
    trace = builder()
    _bump("misses")
    _disk_put(workload, scale, trace)
    _mem_put(key, trace)
    return trace


def warm(workload: str, scale: float,
         builder: Callable[[], ColumnarTrace]) -> bool:
    """Ensure the disk tier holds ``(workload, scale)``.

    Used by the parallel sweep engine: the parent executes each unique
    workload functionally once and publishes the packed bytes, so pool
    workers unpack instead of re-executing.  Returns True when the
    entry is (now) on disk.
    """
    if not disk_enabled():
        return False
    if entry_path(workload, scale).exists():
        return True
    get(workload, scale, builder)
    return entry_path(workload, scale).exists()


def clear_memory() -> None:
    """Drop the in-memory tier and zero the counters (tests)."""
    global _fingerprint
    with _lock:
        _mem.clear()
        for key in _STAT_KEYS:
            _stats[key] = 0
        _fingerprint = None
