"""Negative-path tests: the assembler must fail loudly and precisely."""

import pytest

from repro.isa import AssemblerError, assemble


def expect_error(source: str, fragment: str = ""):
    with pytest.raises(AssemblerError) as excinfo:
        assemble(source)
    if fragment:
        assert fragment in str(excinfo.value)
    return excinfo.value


def test_error_carries_line_number():
    error = expect_error("nop\nnop\nbogus a0, a1\n")
    assert "line 3" in str(error)


def test_wrong_operand_count():
    expect_error("add a0, a1", "bad operands")


def test_bad_register_name():
    expect_error("add a0, a1, q9", "bad operands")


def test_bad_memory_operand():
    expect_error("ld a0, a1", "expected imm(reg)")


def test_non_integer_immediate():
    expect_error("addi a0, a1, banana", "expected integer")


def test_instruction_in_data_section():
    expect_error(".data\nadd a0, a1, a2", "outside .text")


def test_data_directive_in_text_section():
    expect_error(".text\n.dword 5", "outside .data")


def test_unknown_directive():
    expect_error(".frobnicate 3", "unknown directive")


def test_unknown_section():
    expect_error(".section .weird", "unknown section")


def test_equ_requires_value():
    expect_error(".equ FOO", ".equ needs NAME, VALUE")


def test_unterminated_string():
    expect_error('.data\nmsg: .asciz "oops', "string literal")


def test_forward_data_reference_rejected():
    expect_error(".data\nptr: .dword later\nlater: .dword 1",
                 "forward data reference")


def test_undefined_branch_target():
    expect_error("beq a0, a1, nowhere", "undefined symbol")


def test_duplicate_labels():
    expect_error("x: nop\nx: nop", "duplicate label")


def test_bad_symbol_offset():
    expect_error("""
    .data
    arr: .dword 1
    .text
    la a0, arr+banana
    """, "bad symbol offset")


def test_csr_name_unknown():
    expect_error("csrr t0, mfantasy", "expected integer")


def test_empty_source_assembles_to_empty_program():
    program = assemble("")
    assert len(program) == 0
