"""Unit tests for the AutoCounter out-of-band tool."""

import pytest

from repro.cores import BoomCore, LARGE_BOOM, ROCKET, RocketCore
from repro.trace import AutoCounter, CounterAnnotation
from repro.workloads import build_trace


def test_annotation_validation():
    with pytest.raises(ValueError):
        CounterAnnotation("x", reduce="sum")
    with pytest.raises(ValueError):
        AutoCounter([])
    with pytest.raises(ValueError):
        AutoCounter([CounterAnnotation("a"), CounterAnnotation("a")])
    with pytest.raises(ValueError):
        AutoCounter([CounterAnnotation("a")], readout_interval=0)


def test_popcount_vs_or_reduction():
    counter = AutoCounter([
        CounterAnnotation("sig", label="events", reduce="popcount"),
        CounterAnnotation("sig", label="cycles", reduce="or"),
    ])
    for cycle, mask in enumerate([0b111, 0b000, 0b001]):
        counter.on_cycle(cycle, {"sig": mask})
    assert counter.total("events") == 4
    assert counter.total("cycles") == 2
    assert counter.rate("cycles") == pytest.approx(2 / 3)


def test_periodic_readout_and_deltas():
    counter = AutoCounter([CounterAnnotation("sig")], readout_interval=4)
    for cycle in range(12):
        counter.on_cycle(cycle, {"sig": 1 if cycle < 6 else 0})
    assert [s.cycle for s in counter.samples] == [3, 7, 11]
    assert counter.window_deltas("sig") == [4, 2, 0]


def test_csv_output():
    counter = AutoCounter([CounterAnnotation("a"),
                           CounterAnnotation("b")], readout_interval=2)
    for cycle in range(4):
        counter.on_cycle(cycle, {"a": 1, "b": cycle & 1})
    lines = counter.to_csv().strip().splitlines()
    assert lines[0] == "cycle,a,b"
    assert lines[1] == "1,2,1"
    assert lines[2] == "3,4,2"


def test_autocounter_on_rocket_matches_pmu_events():
    """Annotating a PMU event must reproduce the core's own total."""
    trace = build_trace("median", scale=0.3)
    core = RocketCore(ROCKET)
    counter = AutoCounter([
        CounterAnnotation("instr_retired"),
        CounterAnnotation("fetch_bubbles"),
        CounterAnnotation("ibuf_valid", label="ibuf_valid_cycles",
                          reduce="or"),
    ])
    core.add_observer(counter)
    result = core.run(trace)
    assert counter.total("instr_retired") == result.event("instr_retired")
    assert counter.total("fetch_bubbles") == result.event("fetch_bubbles")
    # The raw handshake tap is visible even though it is not a PMU event.
    assert counter.total("ibuf_valid_cycles") > 0
    assert counter.cycles == result.cycles


def test_autocounter_time_series_on_boom():
    trace = build_trace("vvadd", scale=0.2)
    core = BoomCore(LARGE_BOOM)
    counter = AutoCounter([CounterAnnotation("uops_retired")],
                          readout_interval=256)
    core.add_observer(counter)
    result = core.run(trace)
    assert counter.samples, "expected periodic readouts"
    # Cumulative samples are monotone and end at (close to) the total.
    values = [s.values["uops_retired"] for s in counter.samples]
    assert values == sorted(values)
    assert values[-1] <= result.event("uops_retired")
    assert sum(counter.window_deltas("uops_retired")) == values[-1]
