"""The batched grid engine must be bit-identical to per-config runs.

``repro.cores.batch.run_batch`` replays one shared trace through every
grid point while sharing only provably pure artifacts (the trace
columns, per-family descriptor tables, TAGE fold memos).  The oracle is
a standalone ``run_core`` of the same (workload, config, scale): these
tests pin the full ``CoreResult`` surface for the whole workload
registry across the default grid-of-4, the grid-spec parser and its
canonical point keys, fold-cache sharing safety, checkpoint restore,
and the end-to-end acceptance — SIGKILL a ``repro-tma sweep --grid``
run mid-grid, ``--resume`` it, and require the matrix to match an
uninterrupted oracle run exactly.

The whole file honours ``REPRO_TIMING_ENGINE``: the batch-equivalence
CI job runs it once on the default columnar engine and once with the
object-engine oracle forced.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cores import LARGE_BOOM, ROCKET, SMALL_BOOM
from repro.cores.batch import (DEFAULT_GRID, GridPoint, canonical_grid_key,
                               make_core, parse_grid, point_from_key,
                               resolve_config_spec, run_batch)
from repro.cores.boom import BoomCore
from repro.cores.rocket import RocketCore
from repro.tools.checkpoint import SweepCheckpoint, point_key
from repro.tools.tma_tool import run_core
from repro.uarch.branch import share_fold_caches
from repro.workloads import build_trace, workload_names

SCALE = 0.3

GRID = parse_grid(DEFAULT_GRID)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


def result_digest(result):
    return (
        result.events,
        result.lane_events,
        result.cycles,
        result.instret,
        dataclasses.astuple(result.l1i_stats),
        dataclasses.astuple(result.l1d_stats),
        dataclasses.astuple(result.l2_stats),
        dataclasses.astuple(result.predictor_stats),
        result.extra,
    )


# ----------------------------------------------------------------------
# bit-identity across the registry


@pytest.mark.parametrize("workload", workload_names())
def test_batch_matches_single_config_oracle(workload):
    batch = run_batch(workload, GRID, scale=SCALE, use_cache=False)
    assert batch.stats.executed == len(GRID)
    assert batch.stats.trace_fetches == 1
    for point in GRID:
        oracle = run_core(workload, point.config, scale=SCALE,
                          use_cache=False)
        assert result_digest(batch.result_for(point.key)) == \
            result_digest(oracle), point.key


def test_batch_shares_tables_and_folds_on_columnar():
    trace = build_trace("towers", scale=SCALE, engine="compiled")
    assert hasattr(trace, "timing_table")
    batch = run_batch("towers", GRID, scale=SCALE, use_cache=False,
                      engine="columnar", workers=1)
    stats = batch.stats
    assert stats.mode == "inline"
    # One rocket + three BOOM points: each family compiles its
    # descriptor table once, the points beyond the first share it.
    assert stats.tables_shared == 2
    # Three TAGE-predicting BOOMs x four same-geometry tables, minus
    # the four donor tables.
    assert stats.fold_caches_shared == 8


def test_variant_grid_matches_oracle():
    points = parse_grid("rocket,small-boom",
                        vary=("l1d=4,16", "bp=gshare"))
    keys = [p.key for p in points]
    # The bp axis applies to BOOM only; Rocket rides through un-crossed.
    assert keys == [
        "rocket+l1d=4",
        "rocket+l1d=16",
        "small-boom+bp=gshare+l1d=4",
        "small-boom+bp=gshare+l1d=16",
    ]
    batch = run_batch("vvadd", points, scale=SCALE, use_cache=False)
    for point in points:
        oracle = run_core("vvadd", point.config, scale=SCALE,
                          use_cache=False)
        assert result_digest(batch.result_for(point.key)) == \
            result_digest(oracle), point.key


def test_process_pool_matches_inline():
    inline = run_batch("median", GRID, scale=SCALE, use_cache=False,
                       workers=1)
    pooled = run_batch("median", GRID, scale=SCALE, use_cache=False,
                       workers=2)
    assert pooled.stats.mode == "process"
    assert pooled.stats.fallback_reason is None
    for point in GRID:
        assert result_digest(pooled.result_for(point.key)) == \
            result_digest(inline.result_for(point.key))


def test_pool_failure_falls_back_inline():
    def broken_factory(workers):
        raise OSError("no pool for you")

    batch = run_batch("vvadd", GRID, scale=SCALE, use_cache=False,
                      workers=2, executor_factory=broken_factory)
    assert batch.stats.fallback_reason is not None
    assert batch.stats.mode == "inline"
    oracle = run_core("vvadd", GRID[0].config, scale=SCALE,
                      use_cache=False)
    assert result_digest(batch.result_for(GRID[0].key)) == \
        result_digest(oracle)


# ----------------------------------------------------------------------
# grid specs and canonical keys


def test_parse_grid_dedups_and_canonicalizes():
    points = parse_grid("rocket, small-boom ,rocket")
    assert [p.key for p in points] == ["rocket", "small-boom"]
    # The bp axis never applies to Rocket; duplicates collapse.
    rocket_only = parse_grid("rocket", vary=("bp=gshare,tage",))
    assert [p.key for p in rocket_only] == ["rocket"]
    # --vary flag order does not matter: axes are alphabetical.
    a = parse_grid("small-boom", vary=("l1d=8", "bp=gshare"))
    b = parse_grid("small-boom", vary=("bp=gshare", "l1d=8"))
    assert [p.key for p in a] == [p.key for p in b] == \
        ["small-boom+bp=gshare+l1d=8"]


def test_point_from_key_round_trips_and_rejects():
    point = point_from_key("small-boom+bp=gshare+l1d=4")
    assert point.key == "small-boom+bp=gshare+l1d=4"
    assert point.config.branch_predictor == "gshare"
    assert point.config.l1d.size_bytes == 4 * 1024
    with pytest.raises(ValueError, match="canonical"):
        point_from_key("small-boom+l1d=4+bp=gshare")  # wrong axis order
    with pytest.raises(ValueError, match="canonical"):
        point_from_key("small-boom+l1d=4+l1d=8")  # repeated axis
    with pytest.raises(ValueError, match="does not apply"):
        point_from_key("rocket+bp=tage")
    with pytest.raises(ValueError, match="malformed"):
        point_from_key("rocket+l1d")
    with pytest.raises(KeyError):
        point_from_key("mystery-core")
    with pytest.raises(ValueError, match="names no configurations"):
        parse_grid("  ,  ")


def test_resolve_config_spec_widens_registry():
    assert resolve_config_spec("large-boom") is LARGE_BOOM
    variant = resolve_config_spec("large-boom+fetch=2")
    assert variant.fetch_width == 2
    # Variant names extend the config's display name, so result-cache
    # and job keys for variants can never collide with the base config.
    assert variant.name == f"{LARGE_BOOM.name}+fetch=2"


def test_canonical_grid_key_is_order_and_dup_independent():
    points = parse_grid("rocket,small-boom,medium-boom")
    shuffled = [points[2], points[0], points[1], points[0]]
    assert canonical_grid_key("mm", points, 1.0) == \
        canonical_grid_key("mm", shuffled, 1.0)
    assert canonical_grid_key("mm", points, 1.0) != \
        canonical_grid_key("mm", points, 0.5)
    assert canonical_grid_key("mm", points, 1.0) != \
        canonical_grid_key("spmv", points, 1.0)
    assert canonical_grid_key("mm", points[:2], 1.0) != \
        canonical_grid_key("mm", points, 1.0)


def test_run_batch_rejects_degenerate_grids():
    with pytest.raises(ValueError, match="empty grid"):
        run_batch("vvadd", [], scale=SCALE)
    dup = [GRID[0], GRID[0]]
    with pytest.raises(ValueError, match="duplicate grid point"):
        run_batch("vvadd", dup, scale=SCALE)


# ----------------------------------------------------------------------
# fold-cache sharing and per-run state


def test_share_fold_caches_adopts_same_geometry_only():
    donors = BoomCore(LARGE_BOOM)
    adopter = BoomCore(LARGE_BOOM)
    count = share_fold_caches([donors.predictor, adopter.predictor])
    tables = donors.predictor.direction.tables
    assert count == len(tables)
    for a, b in zip(tables, adopter.predictor.direction.tables):
        assert a._folds is b._folds
    # Rocket predictors have no pluggable direction predictor and are
    # skipped; None entries are tolerated (harness-less cores).
    rocket = RocketCore(ROCKET)
    assert share_fold_caches(
        [getattr(rocket, "predictor", None), None]) == 0


def test_shared_folds_do_not_change_results():
    trace = build_trace("qsort", scale=SCALE)
    pristine = BoomCore(SMALL_BOOM).run(trace)
    shared_a = BoomCore(SMALL_BOOM)
    shared_b = BoomCore(SMALL_BOOM)
    share_fold_caches([shared_a.predictor, shared_b.predictor])
    assert result_digest(shared_a.run(trace)) == result_digest(pristine)
    assert result_digest(shared_b.run(trace)) == result_digest(pristine)


def test_batch_rerun_and_cache_hits_are_bit_identical():
    first = run_batch("towers", GRID, scale=SCALE, use_cache=True)
    assert first.stats.executed == len(GRID)
    second = run_batch("towers", GRID, scale=SCALE, use_cache=True)
    assert second.stats.executed == 0
    assert second.stats.cache_hits == len(GRID)
    assert second.stats.share_rate() == 1.0
    for point in GRID:
        assert result_digest(first.result_for(point.key)) == \
            result_digest(second.result_for(point.key))


# ----------------------------------------------------------------------
# checkpoint restore


def test_checkpoint_restores_completed_points():
    checkpoint = SweepCheckpoint(tag="batch-test", signature="sig")
    partial = run_batch("median", GRID[:2], scale=SCALE, use_cache=False,
                        checkpoint=checkpoint)
    assert partial.stats.executed == 2
    resumed = run_batch("median", GRID, scale=SCALE, use_cache=False,
                        checkpoint=checkpoint)
    assert resumed.stats.restored == 2
    assert resumed.stats.executed == len(GRID) - 2
    oracle = run_batch("median", GRID, scale=SCALE, use_cache=False)
    for point in GRID:
        assert result_digest(resumed.result_for(point.key)) == \
            result_digest(oracle.result_for(point.key))


def test_checkpoint_keys_are_namespaced_by_workload():
    checkpoint = SweepCheckpoint(tag="batch-ns", signature="sig")
    run_batch("vvadd", GRID[:1], scale=SCALE, use_cache=False,
              checkpoint=checkpoint)
    assert checkpoint.get(point_key("vvadd", GRID[0].key)) is not None
    # A different workload over the same grid restores nothing.
    other = run_batch("towers", GRID[:1], scale=SCALE, use_cache=False,
                      checkpoint=checkpoint)
    assert other.stats.restored == 0
    assert other.stats.executed == 1


# ----------------------------------------------------------------------
# acceptance: SIGKILL mid-grid, then --resume
# ----------------------------------------------------------------------


def _run_sweep_cli(cache_dir, json_path, *extra, check=True):
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir),
               PYTHONPATH="src", PYTHONUNBUFFERED="1")
    process = subprocess.run(
        [sys.executable, "-m", "repro.tools.cli", "sweep",
         "--grid", "rocket,small-boom",
         "--workloads", "towers,vvadd,median", "--scale", "0.3",
         "--workers", "1", "--no-cache", "--json", str(json_path),
         *extra],
        capture_output=True, text=True, env=env, timeout=300)
    if check:
        assert process.returncode == 0, process.stderr
    return process


def _matrix(json_path):
    """The simulated quantities only (stats differ on a resumed run)."""
    with open(json_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {
        workload: section["points"]
        for workload, section in payload["workloads"].items()
    }


def test_sigkill_mid_grid_then_resume_is_bit_identical(tmp_path):
    oracle_dir = tmp_path / "oracle"
    victim_dir = tmp_path / "victim"
    oracle_dir.mkdir()
    victim_dir.mkdir()
    oracle_json = tmp_path / "oracle.json"
    victim_json = tmp_path / "victim.json"

    _run_sweep_cli(oracle_dir, oracle_json)

    env = dict(os.environ, REPRO_CACHE_DIR=str(victim_dir),
               PYTHONPATH="src", PYTHONUNBUFFERED="1")
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.cli", "sweep",
         "--grid", "rocket,small-boom",
         "--workloads", "towers,vvadd,median", "--scale", "0.3",
         "--workers", "1", "--no-cache"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
    # Give it long enough to checkpoint some grid points, then SIGKILL.
    deadline = time.time() + 30
    ckpt = victim_dir / "checkpoints"
    while time.time() < deadline and victim.poll() is None:
        if ckpt.is_dir() and any(ckpt.glob("*.ckpt")):
            break
        time.sleep(0.02)
    mid_flight = victim.poll() is None
    victim.kill()
    victim.wait(timeout=30)
    if not mid_flight:
        pytest.skip("sweep finished before SIGKILL landed")
    assert victim.returncode == -signal.SIGKILL

    resumed = _run_sweep_cli(victim_dir, victim_json, "--resume")
    assert "restored" in resumed.stdout
    assert _matrix(victim_json) == _matrix(oracle_json)
    # A clean finish clears the checkpoint.
    assert not any((victim_dir / "checkpoints").glob("*.ckpt"))
