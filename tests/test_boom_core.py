"""Unit tests for the BOOM timing model."""

from repro.cores import BoomCore, LARGE_BOOM, SMALL_BOOM
from repro.isa import assemble, execute
from repro.trace import (boom_tma_bundle, capture_trace, modal_length,
                         recovery_sequences)


def run_boom(source: str, config=LARGE_BOOM):
    program = assemble(source)
    trace = execute(program)
    return BoomCore(config).run(trace), trace


# Looped so the I$ warms up: the assertion targets steady-state IPC.
INDEPENDENT_ALU = """
_start:
    li t0, 0
    li t1, 0
    li t2, 0
    li s0, 0
outer:
""" + "\n".join("""
    addi t0, t0, 1
    addi t1, t1, 2
    addi t2, t2, 3
""" for _ in range(30)) + """
    addi s0, s0, 1
    li s1, 60
    blt s0, s1, outer
    li a7, 93
    ecall
"""


def test_superscalar_ipc_above_one():
    # LargeBOOM has two integer issue ports, so pure-ALU code tops out
    # at IPC 2; require most of that once the I$ warms up.
    result, _ = run_boom(INDEPENDENT_ALU)
    assert result.ipc > 1.5


def test_all_instructions_retire():
    result, trace = run_boom(INDEPENDENT_ALU)
    assert result.instret == len(trace)


def test_issued_at_least_retired():
    result, _ = run_boom(INDEPENDENT_ALU)
    assert result.event("uops_issued") >= result.event("uops_retired")
    assert result.event("uops_retired") == result.instret


def test_commit_width_bounds_per_lane_retire():
    result, _ = run_boom(INDEPENDENT_ALU)
    lanes = result.lanes("uops_retired")
    assert 0 < len(lanes) <= LARGE_BOOM.decode_width
    # lane 0 commits most often (in-order commit fills lane 0 first)
    assert lanes[0] == max(lanes)


def test_wrong_path_phantoms_inflate_issue_count():
    """Unpredictable branches must create issued-but-not-retired µops."""
    result, _ = run_boom("""
    _start:
        li s2, 12345
        li t0, 0
        li t1, 400
    loop:
        slli t2, s2, 13
        xor s2, s2, t2
        srli t2, s2, 7
        xor s2, s2, t2
        slli t2, s2, 17
        xor s2, s2, t2
        andi t3, s2, 1
        beqz t3, skip
        addi t4, t4, 1
    skip:
        addi t0, t0, 1
        blt t0, t1, loop
        li a7, 93
        ecall
    """)
    assert result.event("br_mispredict") > 50
    assert result.event("uops_issued") > result.event("uops_retired")
    assert result.event("recovering") > 100


def test_recovering_window_is_four_cycles():
    """Fig. 8b: the dominant Recovering sequence lasts 4 cycles."""
    program = assemble("""
    _start:
        li s2, 99
        li t0, 0
        li t1, 300
    loop:
        slli t2, s2, 13
        xor s2, s2, t2
        srli t2, s2, 7
        xor s2, s2, t2
        andi t3, s2, 1
        beqz t3, skip
        addi t4, t4, 1
    skip:
        addi t0, t0, 1
        blt t0, t1, loop
        li a7, 93
        ecall
    """)
    trace = execute(program)
    core = BoomCore(LARGE_BOOM)
    tracer = capture_trace(core, trace, boom_tma_bundle(3, 5))
    sequences = recovery_sequences(tracer.signal("recovering"))
    assert sequences, "expected mispredict recoveries"
    lengths = [s.length for s in sequences]
    assert modal_length(lengths) == 4


def test_dcache_blocked_requires_mshr_and_nonempty_queue():
    """Pointer chasing keeps dependent loads waiting on MSHRs."""
    chase = "\n".join("""
        slli t2, t0, 3
        add t2, a0, t2
        ld t0, 0(t2)
    """ for _ in range(200))
    source = """
    .data
    ring: .space 65536
    .text
    _start:
        la a0, ring
        li t0, 0
        # build a strided self-ring: ring[i] -> (i + 509) % 8192
        li t1, 0
    init:
        li t2, 8192
        bge t1, t2, init_done
        addi t3, t1, 509
        remu t3, t3, t2
        slli t4, t1, 3
        add t4, a0, t4
        sd t3, 0(t4)
        addi t1, t1, 1
        j init
    init_done:
    """ + chase + """
        li a7, 93
        ecall
    """
    result, _ = run_boom(source)
    assert result.event("dcache_blocked") > 0
    lanes = result.lanes("dcache_blocked")
    # Slot k can only be unfilled if slot k-1 was: monotone counts.
    assert lanes == sorted(lanes)


def test_fence_retired_and_flush_semantics():
    result, _ = run_boom("""
    _start:
        addi t0, t0, 1
        fence
        addi t0, t0, 2
        fence
        addi t0, t0, 3
        li a7, 93
        ecall
    """)
    assert result.event("fence_retired") == 2
    assert result.event("recovering") > 0


def test_machine_clear_on_store_load_aliasing():
    """A load racing an older same-address store must machine-clear
    once, then train the store-set predictor."""
    result, _ = run_boom("""
    .data
    slot: .dword 1
    cold: .space 65536
    .text
    _start:
        la a0, slot
        la a1, cold
        li t0, 0
        li t1, 30
    loop:
        # a slow store address: depends on a cold load
        slli t2, t0, 9
        add t3, a1, t2
        ld t4, 0(t3)          # cold miss: delays the store below
        add t5, a0, t4        # t4 is 0: t5 == a0, but late
        sd t0, 0(t5)          # store to slot, address known late
        ld t6, 0(a0)          # younger load to the same address
        add s1, s1, t6
        addi t0, t0, 1
        blt t0, t1, loop
        li a7, 93
        ecala_placeholder
    """.replace("ecala_placeholder", "ecall"))
    assert result.extra["machine_clears"] >= 1
    # The store-set predictor keeps it rare (not one per iteration).
    assert result.extra["machine_clears"] <= 5


def test_per_lane_uops_issued_fp_lane_used_only_by_fp():
    fp_source = """
    _start:
        li t0, 3
        fcvt.d.l ft0, t0
        fcvt.d.l ft1, t0
""" + "\n".join("""
        fadd.d ft2, ft0, ft1
        fmul.d ft3, ft0, ft1
""" for _ in range(50)) + """
        li a7, 93
        ecall
    """
    result, _ = run_boom(fp_source)
    lanes = result.lanes("uops_issued")
    issue_width = LARGE_BOOM.issue_width
    assert len(lanes) == issue_width
    assert lanes[-1] > 0            # FP port (last lane) used

    int_result, _ = run_boom(INDEPENDENT_ALU)
    int_lanes = int_result.lanes("uops_issued")
    if len(int_lanes) == issue_width:
        assert int_lanes[-1] == 0   # FP port idle for integer code


def test_small_boom_is_slower_than_large():
    big, _ = run_boom(INDEPENDENT_ALU, LARGE_BOOM)
    small, _ = run_boom(INDEPENDENT_ALU, SMALL_BOOM)
    assert small.cycles > big.cycles


def test_icache_blocked_asserted_during_cold_refills():
    result, _ = run_boom(INDEPENDENT_ALU)
    assert result.event("icache_blocked") >= 1


def test_fetch_bubbles_suppressed_while_recovering():
    """fetch_bubbles and recovering are mutually exclusive per cycle."""
    program = assemble("""
    _start:
        li s2, 7
        li t0, 0
        li t1, 150
    loop:
        slli t2, s2, 13
        xor s2, s2, t2
        srli t2, s2, 7
        xor s2, s2, t2
        andi t3, s2, 1
        beqz t3, skip
        addi t4, t4, 1
    skip:
        addi t0, t0, 1
        blt t0, t1, loop
        li a7, 93
        ecall
    """)
    trace = execute(program)
    tracer = capture_trace(BoomCore(LARGE_BOOM), trace,
                           boom_tma_bundle(3, 5))
    bubbles = tracer.signal("fetch_bubbles")
    recovering = tracer.signal("recovering")
    overlap = sum(1 for b, r in zip(bubbles, recovering) if b and r)
    assert overlap == 0
