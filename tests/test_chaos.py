"""Tests for the chaos layer: plan, injector seams, and the campaign.

The expensive end-to-end campaign lives in ``scripts/chaos_smoke.py``
(CI job ``chaos-smoke``); here we test the pieces and one small
deterministic sweep-under-chaos.
"""

import errno
import json

import pytest

from repro.chaos import injector
from repro.chaos.plan import (CLIENT_FLAVORS, DISK_FLAVORS, PLAN_ENV,
                              SEAMS, ChaosPlan)
from repro.cores import ROCKET, SMALL_BOOM
from repro.reliability import ResilientRunner, RetryPolicy
from repro.tools import cache
from repro.tools.parallel import ParallelSweepRunner
from repro.workloads import trace_cache


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    trace_cache.clear_memory()
    yield tmp_path
    trace_cache.clear_memory()


@pytest.fixture(autouse=True)
def chaos_off():
    injector.deactivate()
    injector.reset_counters()
    yield
    injector.deactivate()
    injector.reset_counters()


# ---------------------------------------------------------------------------
# plan determinism
# ---------------------------------------------------------------------------

def test_decisions_are_pure_functions_of_seed_seam_key():
    plan = ChaosPlan(seed=42, disk_fault_rate=0.5, client_fault_rate=0.5,
                     worker_kill_rate=0.5, sched_stall_rate=0.5)
    again = ChaosPlan(seed=42, disk_fault_rate=0.5, client_fault_rate=0.5,
                      worker_kill_rate=0.5, sched_stall_rate=0.5)
    keys = [f"key-{i}" for i in range(64)]
    for seam in SEAMS:
        assert ([plan.decide(seam, key) for key in keys]
                == [again.decide(seam, key) for key in keys])
    # A different seed redraws the schedule.
    other = ChaosPlan(seed=43, disk_fault_rate=0.5, client_fault_rate=0.5,
                      worker_kill_rate=0.5, sched_stall_rate=0.5)
    assert (
        [plan.decide("disk_fault", key) for key in keys]
        != [other.decide("disk_fault", key) for key in keys])


def test_rates_gate_decision_frequency():
    never = ChaosPlan(seed=1)  # all rates default to 0.0
    always = ChaosPlan(seed=1, disk_fault_rate=1.0)
    keys = [f"key-{i}" for i in range(32)]
    assert all(never.decide("disk_fault", key) is None for key in keys)
    flavors = {always.decide("disk_fault", key) for key in keys}
    assert None not in flavors
    assert flavors <= set(DISK_FLAVORS)


def test_planned_faults_enumerates_the_schedule():
    plan = ChaosPlan(seed=5, client_fault_rate=0.5)
    keys = [f"req-{i}" for i in range(40)]
    planned = plan.planned_faults("client_fault", keys)
    assert planned == [(key, plan.decide("client_fault", key))
                       for key in keys
                       if plan.decide("client_fault", key) is not None]
    assert 0 < len(planned) < len(keys)
    assert all(flavor in CLIENT_FLAVORS for _key, flavor in planned)


def test_plan_round_trips_through_json_and_env(monkeypatch):
    plan = ChaosPlan(seed=9, worker_kill_rate=0.25, disk_fault_rate=0.5)
    assert ChaosPlan.from_json(plan.to_json()) == plan
    monkeypatch.setenv(PLAN_ENV, plan.to_json())
    assert ChaosPlan.from_env() == plan
    monkeypatch.setenv(PLAN_ENV, "{not json")
    assert ChaosPlan.from_env() is None
    with pytest.raises(ValueError):
        ChaosPlan.from_payload({"seed": 1, "warp_drive_rate": 0.5})


# ---------------------------------------------------------------------------
# injector seams
# ---------------------------------------------------------------------------

def test_hooks_are_noops_without_an_active_plan():
    data = b"payload-bytes" * 4
    assert injector.mangle_write("result-cache", "k", data) == data
    assert injector.client_fault("GET:/metrics:req-0") is None
    assert injector.maybe_stall() == 0.0
    injector.maybe_kill_worker("shard:x:y")  # must not exit
    assert injector.counters() == {}


def test_activation_scopes_and_exports_to_children(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    plan = ChaosPlan(seed=3, disk_fault_rate=1.0)
    assert injector.plan() is None
    with injector.active(plan):
        assert injector.plan() == plan
        # Exported for pool workers; worker_init adopts it.
        assert ChaosPlan.from_json(json.dumps(
            json.loads(__import__("os").environ[PLAN_ENV]))) == plan
        assert injector.activate_from_env() == plan
    assert injector.plan() is None
    assert PLAN_ENV not in __import__("os").environ


def test_mangle_write_flavors():
    plan = ChaosPlan(seed=0, disk_fault_rate=1.0)
    data = bytes(range(64))
    flavors = {}
    with injector.active(plan):
        for i in range(64):
            key = f"entry-{i}"
            # mangle_write namespaces the decision key with its kind.
            flavor = plan.decide("disk_fault", f"result-cache:{key}")
            if flavor in flavors:
                continue
            if flavor == "enospc":
                with pytest.raises(OSError) as excinfo:
                    injector.mangle_write("result-cache", key, data)
                assert excinfo.value.errno == errno.ENOSPC
                flavors[flavor] = None
            else:
                flavors[flavor] = injector.mangle_write(
                    "result-cache", key, data)
    assert set(flavors) == set(DISK_FLAVORS)
    truncated = flavors["truncate"]
    assert 0 < len(truncated) < len(data)
    assert data.startswith(truncated)
    flipped = flavors["bitflip"]
    assert len(flipped) == len(data) and flipped != data
    assert sum(a != b for a, b in zip(flipped, data)) == 1


def test_connection_error_carries_errno():
    refused = injector.ChaosConnectionError("refuse", "POST:/jobs:req-0")
    reset = injector.ChaosConnectionError("reset", "POST:/jobs:req-1")
    assert refused.errno == errno.ECONNREFUSED
    assert reset.errno == errno.ECONNRESET


# ---------------------------------------------------------------------------
# seam integration: corrupted caches quarantine, never propagate
# ---------------------------------------------------------------------------

def test_corrupt_result_cache_write_is_quarantined_on_next_run():
    runner = ResilientRunner(scale=0.2)
    plan = ChaosPlan(seed=11, disk_fault_rate=1.0)
    key = cache.cache_key("median", 0.2, ROCKET)
    # Only exercise a *corrupting* flavor here (enospc leaves no entry).
    flavor = plan.decide("disk_fault", f"result-cache:{key}")
    if flavor == "enospc":
        plan = ChaosPlan(seed=12, disk_fault_rate=1.0)
        flavor = plan.decide("disk_fault", f"result-cache:{key}")
    assert flavor in ("truncate", "bitflip")

    with injector.active(plan):
        first = runner.run_one("median", ROCKET)
    assert first.status == "ok"
    # The stored entry is damaged; a plain load must refuse it...
    assert cache.load(key) is None
    # ...and the next chaos-free run quarantines and recomputes.
    second = runner.run_one("median", ROCKET)
    assert second.status == "ok"
    assert second.quarantined is True
    assert (cache.serialize_result(first.measurement.result)
            == cache.serialize_result(second.measurement.result))
    assert cache.load(key) is not None  # repopulated intact


def test_corrupt_trace_cache_entry_is_a_counted_miss():
    from repro.workloads import build_trace, clear_caches

    built = build_trace("vvadd", scale=0.1)
    path = trace_cache.entry_path("vvadd", 0.1)
    if not path.exists():
        pytest.skip("interpreted engine forced; no disk tier in play")
    # Flip one payload byte on disk: the sealed envelope must catch it
    # even though the columnar codec itself has no content digest.
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0x01
    path.write_bytes(bytes(raw))
    clear_caches()

    again = build_trace("vvadd", scale=0.1)
    stats = trace_cache.stats()
    assert stats["disk_corrupt"] == 1
    assert stats["misses"] == 1
    assert len(again) == len(built)
    assert path.exists()  # repopulated intact by the rebuild
    clear_caches()
    assert trace_cache.stats() == {key: 0 for key in
                                   ("mem_hits", "disk_hits", "misses",
                                    "disk_corrupt")}
    final = build_trace("vvadd", scale=0.1)
    assert trace_cache.stats()["disk_hits"] == 1
    assert len(final) == len(built)


# ---------------------------------------------------------------------------
# worker kills: a chaos-killed pool sweep still completes every pair
# ---------------------------------------------------------------------------

def test_parallel_sweep_survives_injected_worker_kills():
    runner = ResilientRunner(
        scale=0.1, retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0))
    engine = ParallelSweepRunner(runner=runner, max_workers=2)
    workloads = ["vvadd", "median"]
    configs = [ROCKET, SMALL_BOOM]
    plan = ChaosPlan(seed=1, worker_kill_rate=1.0)

    baseline = ParallelSweepRunner(runner=runner, max_workers=2) \
        .run_grid(workloads, configs)
    with injector.active(plan):
        chaotic = engine.run_grid(workloads, configs)

    assert len(chaotic.outcomes) == len(baseline.outcomes)
    assert [o.status for o in chaotic.outcomes] == ["ok"] * 4
    expected = [cache.serialize_result(o.measurement.result)
                for o in baseline.outcomes]
    actual = [cache.serialize_result(o.measurement.result)
              for o in chaotic.outcomes]
    assert actual == expected
    if chaotic.engine == "parallel":
        # Every shard's first pair drew a kill: the parent recovered.
        assert chaotic.worker_crashes >= 1
        assert chaotic.recovered_indices
