"""Tests for crash-safe sweep checkpoints and resume.

Covers the checkpoint file itself (atomicity, checksums, signature
guards), the RunOutcome codec, suite/parallel resume bit-exactness, and
the end-to-end acceptance: SIGKILL a ``repro-tma suite`` run mid-sweep,
resume with ``--resume``, and get output identical to an uninterrupted
run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core import to_json
from repro.cores import ROCKET, SMALL_BOOM
from repro.reliability import ResilientRunner
from repro.tools import cache
from repro.tools.checkpoint import (SweepCheckpoint, checkpoint_dir,
                                    deserialize_outcome, grid_signature,
                                    serialize_outcome)
from repro.tools.parallel import ParallelSweepRunner
from repro.tools.tma_tool import run_suite
from repro.workloads import trace_cache


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    trace_cache.clear_memory()
    yield tmp_path
    trace_cache.clear_memory()


# ---------------------------------------------------------------------------
# the checkpoint file
# ---------------------------------------------------------------------------

def test_record_load_round_trip():
    checkpoint = SweepCheckpoint(tag="t", signature="sig")
    assert checkpoint.load() == {}
    checkpoint.record("a:Rocket", {"value": 1})
    checkpoint.record_many({"b:Rocket": {"value": 2}})

    fresh = SweepCheckpoint(tag="t", signature="sig")
    assert fresh.load() == {"a:Rocket": {"value": 1},
                            "b:Rocket": {"value": 2}}
    assert fresh.completed_keys() == {"a:Rocket", "b:Rocket"}
    assert fresh.get("a:Rocket") == {"value": 1}
    assert fresh.get("missing") is None


def test_corrupt_checkpoint_is_ignored_wholesale():
    checkpoint = SweepCheckpoint(tag="t", signature="sig")
    checkpoint.record("a", {"value": 1})
    raw = checkpoint.path.read_text(encoding="utf-8")

    # Truncation.
    checkpoint.path.write_text(raw[: len(raw) // 2], encoding="utf-8")
    assert SweepCheckpoint(tag="t", signature="sig").load() == {}

    # Valid JSON, broken checksum.
    document = json.loads(raw)
    document["entries"]["a"] = {"value": 999}
    checkpoint.path.write_text(json.dumps(document), encoding="utf-8")
    assert SweepCheckpoint(tag="t", signature="sig").load() == {}


def test_signature_mismatch_discards_progress():
    checkpoint = SweepCheckpoint(tag="t", signature="grid-one")
    checkpoint.record("a", {"value": 1})
    assert SweepCheckpoint(tag="t", signature="grid-two").load() == {}
    assert SweepCheckpoint(tag="t", signature="grid-one").load() != {}


def test_clear_removes_the_file():
    checkpoint = SweepCheckpoint(tag="t", signature="sig")
    checkpoint.record("a", 1)
    assert checkpoint.path.exists()
    checkpoint.clear()
    assert not checkpoint.path.exists()
    assert SweepCheckpoint(tag="t", signature="sig").load() == {}


def test_checkpoint_survives_result_cache_prune():
    checkpoint = SweepCheckpoint(tag="t", signature="sig")
    checkpoint.record("a", {"value": 1})
    # An aggressive prune of the surrounding result cache must not be
    # able to evict sweep progress (checkpoints are not *.json entries).
    cache.prune(max_entries=0)
    assert SweepCheckpoint(tag="t", signature="sig").load() != {}
    assert checkpoint.path.parent == checkpoint_dir()


def test_grid_signature_distinguishes_grids():
    base = grid_signature(["a", "b"], ["Rocket"], 0.5)
    assert base == grid_signature(["b", "a"], ["Rocket"], 0.5)  # order-free
    assert base != grid_signature(["a"], ["Rocket"], 0.5)
    assert base != grid_signature(["a", "b"], ["Rocket"], 0.6)
    assert base != grid_signature(["a", "b"], ["Rocket"], 0.5, extra="x")


# ---------------------------------------------------------------------------
# RunOutcome codec
# ---------------------------------------------------------------------------

def test_outcome_round_trip_recomputes_tma():
    runner = ResilientRunner(scale=0.1)
    outcome = runner.run_one("vvadd", ROCKET)
    assert outcome.status == "ok"

    clone = deserialize_outcome(
        json.loads(json.dumps(serialize_outcome(outcome))))
    assert clone.workload == outcome.workload
    assert clone.config_name == outcome.config_name
    assert clone.attempts == outcome.attempts
    assert (cache.serialize_result(clone.measurement.result)
            == cache.serialize_result(outcome.measurement.result))
    assert clone.measurement.events == outcome.measurement.events
    assert clone.tma is not None
    assert to_json([clone.tma]) == to_json([outcome.tma])


# ---------------------------------------------------------------------------
# suite + parallel resume are bit-exact
# ---------------------------------------------------------------------------

def test_suite_resume_skips_completed_and_matches_uninterrupted():
    names = ["vvadd", "median", "towers"]
    signature = grid_signature(names, [ROCKET.name], 0.1)
    oracle = run_suite(names, ROCKET, scale=0.1)

    # A "killed" first run: only the first workload got checkpointed.
    partial = SweepCheckpoint(tag="suite", signature=signature)
    run_suite(names[:1], ROCKET, scale=0.1, checkpoint=partial)
    assert partial.completed_keys() == {f"vvadd:{ROCKET.name}"}

    resumed_checkpoint = SweepCheckpoint(tag="suite", signature=signature)
    resumed = run_suite(names, ROCKET, scale=0.1, use_cache=False,
                        checkpoint=resumed_checkpoint)
    assert to_json(resumed) == to_json(oracle)
    assert (resumed_checkpoint.completed_keys()
            == {f"{n}:{ROCKET.name}" for n in names})


def test_parallel_resume_restores_recorded_pairs():
    workloads = ["vvadd", "median"]
    configs = [ROCKET, SMALL_BOOM]
    runner = ResilientRunner(scale=0.1)
    signature = grid_signature(workloads, [c.name for c in configs], 0.1)

    full = ParallelSweepRunner(runner=runner, max_workers=2) \
        .run_grid(workloads, configs)
    assert [o.status for o in full.outcomes] == ["ok"] * 4

    # Simulate a sweep killed after two pairs: checkpoint holds them.
    checkpoint = SweepCheckpoint(tag="sweep", signature=signature)
    checkpoint.record_many({
        f"{o.workload}:{o.config_name}": serialize_outcome(o)
        for o in full.outcomes[:2]})

    resumed = ParallelSweepRunner(runner=runner, max_workers=2).run_grid(
        workloads, configs,
        checkpoint=SweepCheckpoint(tag="sweep", signature=signature))
    assert len(resumed.resumed_indices) == 2
    assert [o.status for o in resumed.outcomes] == ["ok"] * 4
    assert ([cache.serialize_result(o.measurement.result)
             for o in resumed.outcomes]
            == [cache.serialize_result(o.measurement.result)
                for o in full.outcomes])
    assert "resumed=2" in resumed.summary()


def test_parallel_resume_ignores_failed_entries():
    workloads = ["vvadd"]
    configs = [ROCKET]
    runner = ResilientRunner(scale=0.1)
    signature = grid_signature(workloads, [ROCKET.name], 0.1)
    checkpoint = SweepCheckpoint(tag="sweep", signature=signature)
    failed = {"workload": "vvadd", "config_name": ROCKET.name,
              "status": "failed", "attempts": 3, "quarantined": False,
              "error_class": "RunTimeout", "error": "injected",
              "trace_cache": None, "measurement": None}
    checkpoint.record(f"vvadd:{ROCKET.name}", failed)

    report = ParallelSweepRunner(runner=runner, max_workers=1).run_grid(
        workloads, configs,
        checkpoint=SweepCheckpoint(tag="sweep", signature=signature))
    # The failed pair was re-run (and now succeeds), not resumed.
    assert report.resumed_indices == []
    assert report.outcomes[0].status == "ok"


# ---------------------------------------------------------------------------
# acceptance: SIGKILL mid-suite, then --resume
# ---------------------------------------------------------------------------

def _run_suite_cli(cache_dir, *extra, check=True):
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir),
               PYTHONPATH="src", PYTHONUNBUFFERED="1")
    process = subprocess.run(
        [sys.executable, "-m", "repro.tools.cli", "suite",
         "--category", "micro", "--config", "rocket", "--scale", "0.3",
         *extra],
        capture_output=True, text=True, env=env, timeout=300)
    if check:
        assert process.returncode == 0, process.stderr
    return process


def test_sigkill_then_resume_is_bit_identical(tmp_path):
    oracle_dir = tmp_path / "oracle"
    victim_dir = tmp_path / "victim"
    oracle_dir.mkdir()
    victim_dir.mkdir()

    oracle = _run_suite_cli(oracle_dir)

    env = dict(os.environ, REPRO_CACHE_DIR=str(victim_dir),
               PYTHONPATH="src", PYTHONUNBUFFERED="1")
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.cli", "suite",
         "--category", "micro", "--config", "rocket", "--scale", "0.3"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
    # Give it long enough to checkpoint some pairs, then kill it hard.
    deadline = time.time() + 30
    ckpt = (victim_dir / "checkpoints")
    while time.time() < deadline and victim.poll() is None:
        if ckpt.is_dir() and any(ckpt.glob("*.ckpt")):
            break
        time.sleep(0.02)
    mid_flight = victim.poll() is None
    victim.kill()
    victim.wait(timeout=30)
    if not mid_flight:
        pytest.skip("suite finished before SIGKILL landed; nothing to kill")
    assert victim.returncode == -signal.SIGKILL

    # Progress survived the kill...
    resumed = _run_suite_cli(victim_dir, "--resume")
    # ...and the resumed output is bit-identical to the oracle's.
    assert resumed.stdout == oracle.stdout
    # A clean finish clears the checkpoint.
    assert not any((victim_dir / "checkpoints").glob("*.ckpt"))
