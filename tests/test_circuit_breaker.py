"""Tests for the per-key circuit breaker (closed/open/half-open)."""

import pytest

from repro.reliability import CircuitBreaker


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(threshold=3, cooldown=30.0):
    clock = FakeClock()
    return CircuitBreaker(failure_threshold=threshold, cooldown=cooldown,
                          clock=clock), clock


def test_closed_by_default_and_below_threshold():
    breaker, _clock = make_breaker(threshold=3)
    assert breaker.allow("pair") is True
    breaker.record_failure("pair")
    breaker.record_failure("pair")
    assert breaker.state("pair") == "closed"
    assert breaker.allow("pair") is True


def test_threshold_failures_trip_the_circuit():
    breaker, _clock = make_breaker(threshold=3)
    for _ in range(3):
        breaker.record_failure("pair")
    assert breaker.state("pair") == "open"
    assert breaker.allow("pair") is False
    # Other keys are unaffected.
    assert breaker.allow("healthy") is True


def test_success_resets_the_failure_count():
    breaker, _clock = make_breaker(threshold=3)
    breaker.record_failure("pair")
    breaker.record_failure("pair")
    breaker.record_success("pair")
    breaker.record_failure("pair")
    breaker.record_failure("pair")
    assert breaker.state("pair") == "closed"


def test_cooldown_admits_exactly_one_half_open_probe():
    breaker, clock = make_breaker(threshold=1, cooldown=10.0)
    breaker.record_failure("pair")
    assert breaker.allow("pair") is False
    clock.advance(9.9)
    assert breaker.allow("pair") is False
    clock.advance(0.2)
    assert breaker.state("pair") == "half-open"
    assert breaker.allow("pair") is True   # the probe
    assert breaker.allow("pair") is False  # concurrent probe refused


def test_probe_success_closes_probe_failure_reopens():
    breaker, clock = make_breaker(threshold=1, cooldown=10.0)
    breaker.record_failure("pair")
    clock.advance(11.0)
    assert breaker.allow("pair") is True
    breaker.record_success("pair")
    assert breaker.state("pair") == "closed"
    assert breaker.allow("pair") is True

    breaker.record_failure("pair")  # trip again
    clock.advance(11.0)
    assert breaker.allow("pair") is True
    breaker.record_failure("pair")  # probe fails: back to open
    assert breaker.state("pair") == "open"
    assert breaker.allow("pair") is False
    # ... for a fresh full cooldown.
    clock.advance(9.0)
    assert breaker.allow("pair") is False
    clock.advance(2.0)
    assert breaker.allow("pair") is True


def test_snapshot_open_keys_and_reset():
    breaker, _clock = make_breaker(threshold=1)
    breaker.record_failure("bad")
    breaker.record_success("good")
    assert set(breaker.open_keys()) == {"bad"}
    snapshot = breaker.snapshot()
    assert snapshot["bad"]["state"] == "open"
    assert snapshot["bad"]["trips"] == 1
    assert snapshot["good"]["state"] == "closed"
    breaker.reset("bad")
    assert breaker.state("bad") == "closed"
    breaker.record_failure("bad")
    breaker.reset()
    assert breaker.open_keys() == {}


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown=-1.0)
