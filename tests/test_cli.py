"""Unit tests for the tma_tool command-line interface."""

import pytest

from repro.tools.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_reliability_smoke_campaign(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    code, out, _ = run_cli(capsys, "reliability", "--faults", "1",
                           "--seed", "0", "--scale", "0.15",
                           "--max-cycles", "100000")
    assert code == 0
    assert "campaign PASSED" in out
    assert "detected 1/1" in out


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_list_all(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    assert "mergesort" in out
    assert "505.mcf_r" in out


def test_list_filtered_category(capsys):
    code, out, _ = run_cli(capsys, "list", "--category", "case-study")
    assert code == 0
    assert "brmiss" in out
    assert "505.mcf_r" not in out


def test_tma_command(capsys):
    code, out, _ = run_cli(capsys, "tma", "--workload", "vvadd",
                           "--config", "rocket", "--scale", "0.2",
                           "--top-only")
    assert code == 0
    assert "Retiring" in out
    assert "vvadd on Rocket" in out


def test_tma_level2_included_by_default(capsys):
    code, out, _ = run_cli(capsys, "tma", "--workload", "vvadd",
                           "--config", "rocket", "--scale", "0.2")
    assert code == 0
    assert "level 2" in out


def test_trace_command_anchors_on_first_event(capsys):
    code, out, _ = run_cli(capsys, "trace", "--workload", "vvadd",
                           "--config", "rocket", "--scale", "0.2",
                           "--signals", "icache_miss,fetch_bubbles",
                           "--window", "40")
    assert code == 0
    assert "icache_miss" in out
    assert "|" in out


def test_trace_rejects_unknown_signal(capsys):
    code, out, err = run_cli(capsys, "trace", "--workload", "vvadd",
                             "--config", "rocket", "--scale", "0.2",
                             "--signals", "flux_capacitor")
    assert code == 1
    assert "unknown signal" in err


def test_vlsi_command(capsys):
    code, out, _ = run_cli(capsys, "vlsi")
    assert code == 0
    assert "GigaBOOMV3" in out
    assert "distributed" in out


def test_perf_command_distributed(capsys):
    code, out, _ = run_cli(capsys, "perf", "--workload", "median",
                           "--config", "large-boom", "--scale", "0.2",
                           "--events", "uops_retired,recovering",
                           "--counter-arch", "distributed")
    assert code == 0
    assert "uops_retired" in out
    assert "passes=1" in out


def test_perf_show_tma(capsys):
    code, out, _ = run_cli(capsys, "perf", "--workload", "median",
                           "--config", "rocket", "--scale", "0.2",
                           "--show-tma")
    assert code == 0
    assert "Retiring" in out


def test_suite_command(capsys):
    code, out, _ = run_cli(capsys, "suite", "--category", "case-study",
                           "--config", "rocket", "--scale", "0.2")
    assert code == 0
    assert "brmiss" in out
    assert "IPC" in out


def test_report_command(tmp_path, capsys):
    artifacts = tmp_path / "out"
    artifacts.mkdir()
    (artifacts / "fig1_demo.txt").write_text("demo table\n")
    output = tmp_path / "REPORT.md"
    code, out, _ = run_cli(capsys, "report", "--artifacts",
                           str(artifacts), "--output", str(output))
    assert code == 0
    text = output.read_text()
    assert "## fig1_demo" in text
    assert "demo table" in text


def test_report_command_missing_artifacts(tmp_path, capsys):
    code, _, err = run_cli(capsys, "report", "--artifacts",
                           str(tmp_path / "nope"))
    assert code == 1
    assert "no artifacts" in err


def test_mix_command(capsys):
    code, out, _ = run_cli(capsys, "mix", "--workload", "median",
                           "--scale", "0.2")
    assert code == 0
    assert "instruction mix" in out
    assert "branches" in out


def test_suite_export_flags(tmp_path, capsys):
    json_path = tmp_path / "suite.json"
    csv_path = tmp_path / "suite.csv"
    code, out, _ = run_cli(capsys, "suite", "--category", "case-study",
                           "--config", "rocket", "--scale", "0.2",
                           "--json", str(json_path),
                           "--csv", str(csv_path))
    assert code == 0
    assert json_path.exists() and csv_path.exists()
    assert "brmiss" in json_path.read_text()
    assert csv_path.read_text().startswith("workload,")


def test_cache_stats_command(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    code, out, _ = run_cli(capsys, "cache", "stats")
    assert code == 0
    assert "entries: 0" in out
    assert "unlimited" in out


def test_cache_prune_command(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    run_cli(capsys, "tma", "--workload", "vvadd", "--config", "rocket",
            "--scale", "0.2")
    run_cli(capsys, "tma", "--workload", "median", "--config", "rocket",
            "--scale", "0.2")
    code, out, _ = run_cli(capsys, "cache", "prune", "--max-entries", "1")
    assert code == 0
    assert "evicted 1 entries" in out
    assert "entries: 1" in out


def test_cache_prune_requires_a_bound(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE_LIMIT_BYTES", raising=False)
    monkeypatch.delenv("REPRO_CACHE_LIMIT_ENTRIES", raising=False)
    code, _, err = run_cli(capsys, "cache", "prune")
    assert code == 1
    assert "nothing to prune" in err


def test_serve_and_submit_round_trip(capsys, tmp_path, monkeypatch):
    """CLI-level smoke: an in-thread server + the submit subcommand."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.service import TMAService, serve_in_thread

    service = TMAService(workers=1, executor="thread",
                         queue_capacity=8).start()
    server, _thread = serve_in_thread(service)
    url = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        code, out, _ = run_cli(capsys, "submit", "--url", url,
                               "--workload", "vvadd,vvadd",
                               "--config", "rocket", "--scale", "0.2")
        assert code == 0
        assert "accepted job-000001" in out
        assert "(deduped)" in out
        assert out.count("done") == 2
    finally:
        server.shutdown()
        service.drain()


def test_submit_unreachable_server(capsys):
    code, _, err = run_cli(capsys, "submit", "--url",
                           "http://127.0.0.1:9", "--workload", "vvadd",
                           "--retries", "0", "--timeout", "2")
    assert code == 1
    assert "submit failed" in err


def test_multicore_list(capsys):
    code, out, _ = run_cli(capsys, "multicore", "--list")
    assert code == 0
    for name in ("noisy-neighbor", "symmetric", "latency-victim",
                 "capacity-clash"):
        assert name in out


def test_multicore_requires_scenario(capsys):
    code, _, err = run_cli(capsys, "multicore")
    assert code == 2
    assert "scenario" in err


def test_multicore_unknown_scenario(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    code, _, err = run_cli(capsys, "multicore", "--scenario", "no-such")
    assert code == 2
    assert "no-such" in err


def test_multicore_run_renders_and_writes_json(capsys, tmp_path,
                                               monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    json_path = tmp_path / "mc.json"
    code, out, _ = run_cli(capsys, "multicore", "--scenario",
                           "noisy-neighbor", "--scale", "0.1",
                           "--json", str(json_path))
    assert code == 0
    assert "noisy-neighbor" in out
    assert "mem-bound" in out
    assert "neighbor" in out

    import json

    payload = json.loads(json_path.read_text())
    assert payload["scenario"] == "noisy-neighbor"
    active = [c for c in payload["cores"] if not c.get("idle")]
    assert len(active) == 2
    for core in active:
        attribution = core["attribution"]
        assert (attribution["self"] + attribution["neighbor_induced"]
                == attribution["mem_bound"])

    # Second run is served from the payload cache.
    code, out, _ = run_cli(capsys, "multicore", "--scenario",
                           "noisy-neighbor", "--scale", "0.1")
    assert code == 0
    assert "(cached)" in out


def test_sweep_json_surfaces_pool_fallback(capsys, tmp_path, monkeypatch):
    """Regression: a degraded sweep must say so in its JSON report.

    A broken process pool silently fell back to inline execution; now
    the per-workload stats carry ``fallback_reason``/``mode`` and the
    report lists every degraded batch at the top level.
    """
    import json

    from repro.tools import pool

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

    def broken_factory(workers):
        raise RuntimeError("boom")

    monkeypatch.setitem(pool.EXECUTOR_FACTORIES, "process", broken_factory)
    json_path = tmp_path / "sweep.json"
    code, _, _ = run_cli(capsys, "sweep", "--workloads", "vvadd",
                         "--grid", "rocket,small-boom", "--workers", "2",
                         "--scale", "0.1", "--json", str(json_path))
    assert code == 0  # fallback completes the sweep inline
    payload = json.loads(json_path.read_text())
    assert payload["degraded"] == [{
        "workload": "vvadd",
        "mode": "inline",
        "fallback_reason": "RuntimeError: boom",
    }]
    stats = payload["workloads"]["vvadd"]["stats"]
    assert stats["fallback_reason"] == "RuntimeError: boom"
    assert stats["mode"] == "inline"


def test_sweep_healthy_json_reports_no_degradation(capsys, tmp_path,
                                                   monkeypatch):
    import json

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    json_path = tmp_path / "sweep.json"
    code, _, _ = run_cli(capsys, "sweep", "--workloads", "vvadd",
                         "--grid", "rocket", "--scale", "0.1",
                         "--json", str(json_path))
    assert code == 0
    payload = json.loads(json_path.read_text())
    assert payload["degraded"] == []
    assert payload["workloads"]["vvadd"]["stats"]["fallback_reason"] is None


def test_sweep_deadline_writes_partial_json(capsys, tmp_path, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    json_path = tmp_path / "sweep.json"
    code, out, err = run_cli(capsys, "sweep", "--workloads", "vvadd",
                             "--grid", "rocket", "--scale", "0.1",
                             "--deadline", "0", "--json", str(json_path))
    assert code == 3
    assert "deadline lapsed" in err
    assert "(partial)" in out
    payload = json.loads(json_path.read_text())
    assert payload["partial"] is True
    assert payload["remaining"] == ["vvadd"]
    assert payload["degraded"] == []
