"""Columnar trace backend: codec round-trip, laziness, core parity."""

import pickle

import pytest

from repro.cores import config_by_name
from repro.isa import ColumnarTrace, ExecutionError, execute, execute_compiled
from repro.isa.columnar import unpack, unpack_window
from repro.pmu.harness import make_core
from repro.workloads import build_program

from tests.test_trace_compiler import assert_traces_identical


@pytest.fixture(scope="module")
def trace():
    return execute_compiled(build_program("towers"))


def test_pack_unpack_round_trip(trace):
    restored = unpack(trace.pack())
    assert isinstance(restored, ColumnarTrace)
    assert_traces_identical(trace, restored)
    assert restored.program_name == trace.program_name


def test_unpack_rejects_corruption(trace):
    data = trace.pack()
    with pytest.raises(ExecutionError):
        unpack(b"NOPE" + data[4:])
    with pytest.raises(ExecutionError):
        unpack(data[:len(data) // 2])  # truncated columns
    with pytest.raises(ExecutionError):
        unpack(b"")


def test_lazy_indexing_matches_materialized_list(trace):
    fresh = unpack(trace.pack())  # nothing materialized yet
    assert fresh._materialized is None
    sampled = [fresh[0], fresh[len(fresh) // 2], fresh[-1]]
    assert fresh._materialized is None  # single indexing stays lazy
    full = fresh.instructions
    assert fresh._materialized is full
    for inst, expect in zip(
            (full[0], full[len(fresh) // 2], full[-1]), sampled):
        assert inst.index == expect.index
        assert inst.pc == expect.pc
        assert inst.mnemonic == expect.mnemonic
    with pytest.raises(IndexError):
        unpack(trace.pack())[len(fresh)]


def test_iteration_parity(trace):
    lazy = list(iter(unpack(trace.pack())))
    assert len(lazy) == len(trace)
    assert [i.pc for i in lazy] == [i.pc for i in trace.instructions]


def test_summary_helpers_match_interpreted_trace():
    program = build_program("brmiss")
    interpreted = execute(program)
    columnar = execute_compiled(program)
    assert columnar.class_histogram() == interpreted.class_histogram()
    assert columnar.branch_count() == interpreted.branch_count()
    assert (columnar.mispredictable_summary()
            == interpreted.mispredictable_summary())


def test_pickle_ships_packed_bytes(trace):
    payload = pickle.dumps(trace)
    # The wire format is the pack() codec, not a DynInst object graph.
    assert b"RTRC1" in payload
    assert b"DynInst" not in payload
    assert_traces_identical(trace, pickle.loads(payload))


def test_getitem_slice_has_list_semantics(trace):
    fresh = unpack(trace.pack())
    window = fresh[2:10]
    assert isinstance(window, list)
    assert fresh._materialized is None  # slicing stays lazy
    expect = trace.instructions[2:10]
    assert [i.index for i in window] == [i.index for i in expect]
    assert [i.pc for i in window] == [i.pc for i in expect]
    # Extended slices and the materialized path agree with list
    # semantics too.
    assert [i.pc for i in fresh[10:2:-2]] == \
        [i.pc for i in trace.instructions[10:2:-2]]
    assert [i.pc for i in fresh[-3:]] == \
        [i.pc for i in trace.instructions[-3:]]
    fresh.instructions  # materialize
    assert [i.pc for i in fresh[2:10]] == [i.pc for i in expect]


def test_slice_is_a_shared_static_view(trace):
    start, stop = 5, len(trace) // 2
    view = trace.slice(start, stop)
    assert len(view) == stop - start
    assert view.static_ops is trace.static_ops
    assert view._timing_tables is trace._timing_tables
    assert view.program_name == f"{trace.program_name}[{start}:{stop}]"
    expect = trace.instructions[start:stop]
    got = view.instructions
    assert [i.pc for i in got] == [i.pc for i in expect]
    assert [i.mnemonic for i in got] == [i.mnemonic for i in expect]
    assert [i.mem_addr for i in got] == [i.mem_addr for i in expect]
    assert [i.taken for i in got] == [i.taken for i in expect]
    for bad in ((-1, 4), (4, 2), (0, len(trace) + 1)):
        with pytest.raises(ValueError):
            trace.slice(*bad)


def test_window_codec_round_trips_byte_identical(trace):
    static_blob = trace.pack_static()
    start, stop = 3, 40
    restored = unpack_window(static_blob, trace.pack_window(start, stop))
    # The reassembled window is byte-for-byte the slice() view.
    assert restored.pack() == trace.slice(start, stop).pack()
    with pytest.raises(ValueError):
        trace.pack_window(10, len(trace) + 1)
    with pytest.raises(ExecutionError):
        unpack_window(static_blob, b"NOPE")
    with pytest.raises(ExecutionError):
        unpack_window(b"NOPE", trace.pack_window(start, stop))


def test_window_unpack_shares_one_static_table(trace):
    static_blob = trace.pack_static()
    a = unpack_window(static_blob, trace.pack_window(0, 16))
    b = unpack_window(static_blob, trace.pack_window(16, 64))
    # K windows shipped to one worker share a single parsed StaticOp
    # tuple and one compiled timing-table cache — no duplication.
    assert a.static_ops is b.static_ops
    assert a._timing_tables is b._timing_tables


@pytest.mark.parametrize("config_name", ["rocket", "small-boom"])
@pytest.mark.parametrize("fast_path", [False, True])
def test_cores_accept_columnar_traces(config_name, fast_path):
    program = build_program("median")
    interpreted = execute(program)
    columnar = execute_compiled(program)
    config = config_by_name(config_name)
    baseline = make_core(config).run(interpreted, fast_path=fast_path)
    result = make_core(config).run(columnar, fast_path=fast_path)
    assert result.cycles == baseline.cycles
    assert result.instret == baseline.instret
