"""Cross-component consistency properties.

The tracer, the counter banks, and the core's own accumulator all
observe the *same* per-cycle signal dictionary; these property tests
pin them together on randomly generated programs, so a packing bug in
the trace bundle or a counting bug in a bank cannot drift silently.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cores import BoomCore, LARGE_BOOM, ROCKET, RocketCore
from repro.isa import assemble, execute
from repro.pmu import AddWiresCounterBank, ScalarCounterBank
from repro.trace import CycleTracer, boom_tma_bundle, rocket_tma_bundle

_OPS = ["add", "sub", "and", "or", "xor", "sll", "srl"]
_REGS = ["t0", "t1", "t2", "t3", "s1", "s2", "a2", "a3"]


@st.composite
def random_program(draw):
    """A small random (but always-terminating) integer program."""
    lines = ["_start:"]
    for reg_index, reg in enumerate(_REGS):
        lines.append(f"    li {reg}, {draw(st.integers(0, 100))}")
    body_len = draw(st.integers(5, 40))
    for _ in range(body_len):
        kind = draw(st.integers(0, 3))
        if kind < 3:
            op = draw(st.sampled_from(_OPS))
            rd, r1, r2 = (draw(st.sampled_from(_REGS)) for _ in range(3))
            lines.append(f"    {op} {rd}, {r1}, {r2}")
        else:
            rd = draw(st.sampled_from(_REGS))
            imm = draw(st.integers(-100, 100))
            lines.append(f"    addi {rd}, {rd}, {imm}")
    # A short counted loop exercises branches deterministically.
    trips = draw(st.integers(1, 8))
    lines.append(f"    li s3, {trips}")
    lines.append("    li s4, 0")
    lines.append("loop:")
    lines.append("    addi s4, s4, 1")
    lines.append("    blt s4, s3, loop")
    lines.append("    li a7, 93")
    lines.append("    ecall")
    return "\n".join(lines)


@settings(max_examples=15, deadline=None)
@given(random_program())
def test_rocket_tracer_matches_core_totals(source):
    trace = execute(assemble(source))
    core = RocketCore(ROCKET)
    bundle = rocket_tma_bundle()
    tracer = CycleTracer(bundle)
    core.add_observer(tracer)
    result = core.run(trace)
    for field in bundle.fields:
        traced = sum(v.bit_count() for v in tracer.signal(field.name))
        assert traced == result.event(field.name), field.name
    assert len(tracer) == result.cycles


@settings(max_examples=10, deadline=None)
@given(random_program())
def test_boom_tracer_and_banks_match_core_totals(source):
    trace = execute(assemble(source))
    core = BoomCore(LARGE_BOOM)
    bundle = boom_tma_bundle(LARGE_BOOM.decode_width,
                             LARGE_BOOM.issue_width)
    tracer = CycleTracer(bundle)
    events = ["uops_issued", "uops_retired", "fetch_bubbles",
              "recovering"]
    scalar = ScalarCounterBank("boom", events)
    adders = AddWiresCounterBank("boom", events)
    for observer in (tracer, scalar, adders):
        core.add_observer(observer)
    result = core.run(trace)

    for field in bundle.fields:
        traced = sum(v.bit_count() for v in tracer.signal(field.name))
        assert traced == result.event(field.name), field.name
    for event in events:
        assert scalar.read_event(event) == result.event(event)
        assert adders.read_event(event) == result.event(event)


@settings(max_examples=10, deadline=None)
@given(random_program())
def test_boom_retires_every_instruction_exactly_once(source):
    trace = execute(assemble(source))
    result = BoomCore(LARGE_BOOM).run(trace)
    assert result.instret == len(trace)
    assert result.event("uops_retired") == len(trace)
    assert result.event("uops_issued") >= len(trace)


@settings(max_examples=10, deadline=None)
@given(random_program())
def test_rocket_and_boom_agree_on_architectural_work(source):
    trace = execute(assemble(source))
    rocket = RocketCore(ROCKET).run(trace)
    boom = BoomCore(LARGE_BOOM).run(trace)
    assert rocket.instret == boom.instret == len(trace)
    # Same committed branches on both cores.
    assert rocket.event("branch") == trace.branch_count()
