"""Fast-path core loops must be bit-identical to the traced loops.

The tracerless fast path skips per-cycle signal-record allocation; the
only acceptable difference is wall clock.  These tests pin the full
result surface — event totals, cycles, instret, cache and predictor
statistics — for both cores across a workload cross-section, plus the
guard that refuses the fast path when an observer needs the records it
skips.
"""

import dataclasses

import pytest

from repro.cores import LARGE_BOOM, ROCKET, SMALL_BOOM
from repro.pmu.harness import make_core
from repro.workloads import build_trace

WORKLOADS = ["dhrystone", "median", "memcpy", "mergesort", "qsort",
             "spmv", "towers", "vvadd"]
SCALE = 0.3


def result_digest(result):
    return (
        result.events,
        result.lane_events,
        result.cycles,
        result.instret,
        dataclasses.astuple(result.l1i_stats),
        dataclasses.astuple(result.l1d_stats),
        dataclasses.astuple(result.l2_stats),
        dataclasses.astuple(result.predictor_stats),
        result.extra,
    )


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("config", [ROCKET, SMALL_BOOM, LARGE_BOOM],
                         ids=lambda c: c.name)
def test_fast_path_matches_traced_path(workload, config):
    trace = build_trace(workload, scale=SCALE)
    traced = make_core(config).run(trace, fast_path=False)
    fast = make_core(config).run(trace, fast_path=True)
    if isinstance(fast.lane_events, dict) and not fast.lane_events:
        # The fast path reports no per-lane splits (nothing tracks
        # them); totals must still agree exactly.
        assert traced.events == fast.events
        digest_traced = result_digest(traced)[2:]
        digest_fast = result_digest(fast)[2:]
        assert digest_traced == digest_fast
    else:
        assert result_digest(traced) == result_digest(fast)


@pytest.mark.parametrize("config", [ROCKET, SMALL_BOOM],
                         ids=lambda c: c.name)
def test_auto_path_is_fast_only_when_traceless(config):
    trace = build_trace("median", scale=SCALE)
    core = make_core(config)
    auto = core.run(trace)
    assert auto.events == make_core(config).run(trace,
                                                fast_path=True).events

    class Recorder:
        def __init__(self):
            self.cycles = 0

        def on_cycle(self, cycle, signals):
            self.cycles += 1

    observed_core = make_core(config)
    recorder = Recorder()
    observed_core.add_observer(recorder)
    observed = observed_core.run(trace)
    assert recorder.cycles == observed.cycles
    assert observed.events == auto.events


@pytest.mark.parametrize("config", [ROCKET, SMALL_BOOM],
                         ids=lambda c: c.name)
def test_fast_path_refused_with_observer(config):
    core = make_core(config)
    core.add_observer(lambda cycle, signals: None)
    with pytest.raises(ValueError):
        core.run(build_trace("median", scale=SCALE), fast_path=True)
