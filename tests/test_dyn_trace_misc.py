"""Unit tests for DynamicTrace utilities and small remaining gaps."""

import pytest

from repro.isa import InstrClass, assemble, execute
from repro.isa.dyn_trace import FP_REG_BASE, NO_REG


@pytest.fixture(scope="module")
def mixed_trace():
    return execute(assemble("""
    .data
    v: .dword 5
    .text
    _start:
        la t0, v
        ld t1, 0(t0)
        fcvt.d.l ft0, t1
        fadd.d ft1, ft0, ft0
        fcvt.l.d t2, ft1
        sd t2, 0(t0)
        beq t2, t1, same
        addi a0, a0, 1
    same:
        li a7, 93
        ecall
    """))


def test_class_histogram_counts_everything(mixed_trace):
    histogram = mixed_trace.class_histogram()
    assert sum(histogram.values()) == len(mixed_trace)
    assert histogram[InstrClass.FP] >= 3
    assert histogram[InstrClass.BRANCH] == 1


def test_branch_count_and_summary(mixed_trace):
    assert mixed_trace.branch_count() == 1
    summary = mixed_trace.mispredictable_summary()
    assert summary["branches"] == 1
    assert summary["taken"] + summary["not_taken"] == 1


def test_indexing_and_iteration(mixed_trace):
    assert mixed_trace[0].mnemonic == "auipc"   # from `la`
    assert len(list(iter(mixed_trace))) == len(mixed_trace)


def test_fp_register_ids_are_offset(mixed_trace):
    fadd = next(i for i in mixed_trace if i.mnemonic == "fadd.d")
    assert fadd.dest >= FP_REG_BASE
    assert all(src >= FP_REG_BASE for src in fadd.srcs)
    store = next(i for i in mixed_trace if i.mnemonic == "sd")
    assert store.dest == NO_REG


def test_csr_fields_default_inactive(mixed_trace):
    ld = next(i for i in mixed_trace if i.mnemonic == "ld")
    assert ld.csr == -1 and ld.csr_write is None


def test_final_registers_snapshot(mixed_trace):
    # a7 holds the exit syscall number at halt.
    assert mixed_trace.final_int_regs[17] == 93


def test_is_mem_and_control_flow_flags(mixed_trace):
    kinds = {i.mnemonic: i for i in mixed_trace}
    assert kinds["ld"].is_mem and kinds["ld"].is_load
    assert kinds["sd"].is_mem and kinds["sd"].is_store
    assert kinds["beq"].is_control_flow
    assert not kinds["fadd.d"].is_mem
