"""Smoke tests: every example script must run and produce its output.

Examples are the library's front door; these tests keep them from
rotting.  They run in-process (importing each script's ``main``) with
``sys.argv`` pinned, sharing the workload/result caches with the rest of
the suite.
"""

import importlib.util
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_example(name: str, capsys, argv=()):
    module = load_example(name)
    old_argv = sys.argv
    sys.argv = [f"{name}.py", *argv]
    try:
        code = module.main()
    finally:
        sys.argv = old_argv
    out = capsys.readouterr().out
    return code, out


def test_quickstart(capsys):
    code, out = run_example("quickstart", capsys, argv=["vvadd"])
    assert code == 0
    assert "vvadd on Rocket" in out
    assert "vvadd on LargeBOOMV3" in out


def test_quickstart_unknown_workload(capsys):
    code, out = run_example("quickstart", capsys, argv=["nonsense"])
    assert code == 1
    assert "available" in out


def test_case_study_cache_size(capsys):
    code, out = run_example("case_study_cache_size", capsys)
    assert code == 0
    assert "measured slowdown" in out
    assert "Backend delta" in out


def test_counter_architectures(capsys):
    code, out = run_example("counter_architectures", capsys)
    assert code == 0
    assert "OpenSBI boot sequence" in out
    assert "marshal-pmu build" in out
    assert "scalar" in out


def test_temporal_trace(capsys):
    code, out = run_example("temporal_trace", capsys)
    assert code == 0
    assert "recovering sequences" in out
    assert "temporal TMA vs counter TMA" in out


def test_vlsi_overheads(capsys):
    code, out = run_example("vlsi_overheads", capsys)
    assert code == 0
    assert "GigaBOOMV3" in out
    assert "mm^2" in out


def test_custom_workload(capsys):
    code, out = run_example("custom_workload", capsys)
    assert code == 0
    assert "histogram on Rocket" in out
    assert "histogram on LargeBOOMV3" in out


def test_boom_size_sweep(capsys):
    code, out = run_example("boom_size_sweep", capsys, argv=["vvadd"])
    assert code == 0
    assert "SmallBOOMV3" in out
    assert "GigaBOOMV3" in out


def test_phase_profile(capsys):
    code, out = run_example("phase_profile", capsys,
                            argv=["vvadd", "2048"])
    assert code == 0
    assert "TMA phase profile" in out
    assert "IPC per window" in out
