"""Unit tests for the JSON/CSV export schema."""

import json

import pytest

from repro.core import (SCHEMA_VERSION, compute_level3, compute_tma,
                        from_json, result_to_dict, to_csv, to_json)
from repro.core.tma import TmaInputs
from repro.cores import LARGE_BOOM
from repro.tools import run_core


def sample_result(workload="w", retired=900):
    inputs = TmaInputs(core="boom", workload=workload, config_name="c",
                       cycles=1000, commit_width=3,
                       events={"uops_retired": retired,
                               "instr_retired": retired})
    return compute_tma(inputs)


def test_result_to_dict_fields():
    payload = result_to_dict(sample_result())
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["workload"] == "w"
    assert payload["ipc"] == pytest.approx(0.9)
    assert set(payload["level1"]) == {
        "retiring", "bad_speculation", "frontend", "backend"}
    assert payload["events"]["uops_retired"] == 900


def test_single_result_json_is_object():
    document = to_json([sample_result()])
    assert json.loads(document)["workload"] == "w"


def test_multi_result_json_is_array():
    document = to_json([sample_result("a"), sample_result("b")])
    parsed = json.loads(document)
    assert [item["workload"] for item in parsed] == ["a", "b"]


def test_from_json_round_trip():
    document = to_json([sample_result("x", retired=600)])
    items = from_json(document)
    assert items[0]["workload"] == "x"
    assert items[0]["level1"]["retiring"] == pytest.approx(0.2)


def test_from_json_rejects_wrong_schema():
    document = json.dumps({"schema_version": 99})
    with pytest.raises(ValueError):
        from_json(document)


def test_csv_layout():
    text = to_csv([sample_result("a"), sample_result("b", retired=300)])
    lines = text.strip().splitlines()
    assert len(lines) == 3
    header = lines[0].split(",")
    assert header[:3] == ["workload", "config", "core"]
    assert "retiring" in header
    assert "mem_bound" in header


def test_csv_empty():
    assert to_csv([]) == ""


def test_level3_attached_when_provided():
    result = run_core("vvadd", LARGE_BOOM, scale=0.2)
    base = compute_tma(result)
    payload = result_to_dict(base, level3=compute_level3(result, base))
    assert "level3" in payload
    assert set(payload["level3"]) >= {"l1_bound", "dram_bound",
                                      "tlb_bound"}


def test_export_is_json_serializable_for_real_run():
    result = run_core("vvadd", LARGE_BOOM, scale=0.2)
    document = to_json([compute_tma(result)])
    parsed = from_json(document)
    assert parsed[0]["cycles"] == result.cycles
