"""Unit tests for the level-3 TMA extension."""

import pytest

from repro.core import compute_level3, compute_tma
from repro.core.extensions import _memory_level_shares, _tlb_bound
from repro.cores import LARGE_BOOM, ROCKET
from repro.cores.base import CoreResult
from repro.tools import run_core
from repro.uarch.branch import PredictorStats
from repro.uarch.cache import CacheStats


def fake_result(l1_misses=0, l2_misses=0, events=None, core="boom",
                cycles=1000, commit_width=3) -> CoreResult:
    return CoreResult(
        workload="fake", config_name="c", core=core, cycles=cycles,
        instret=0, events=events or {}, lane_events={},
        commit_width=commit_width, issue_width=5,
        l1i_stats=CacheStats(),
        l1d_stats=CacheStats(accesses=10 * max(1, l1_misses),
                             misses=l1_misses),
        l2_stats=CacheStats(accesses=max(1, l1_misses),
                            misses=l2_misses),
        predictor_stats=PredictorStats())


def test_memory_shares_sum_to_one():
    shares = _memory_level_shares(fake_result(l1_misses=100,
                                              l2_misses=40))
    assert sum(shares.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in shares.values())


def test_memory_shares_all_l1_when_no_misses():
    shares = _memory_level_shares(fake_result())
    assert shares == {"l1": 1.0, "l2": 0.0, "dram": 0.0}


def test_dram_share_dominates_when_l2_misses():
    shares = _memory_level_shares(fake_result(l1_misses=100,
                                              l2_misses=100))
    assert shares["dram"] > shares["l2"]


def test_l2_share_dominates_when_l2_absorbs():
    shares = _memory_level_shares(fake_result(l1_misses=1000,
                                              l2_misses=1))
    assert shares["l2"] > shares["dram"]


def test_tlb_bound_zero_without_misses():
    assert _tlb_bound(fake_result()) == 0.0


def test_tlb_bound_counts_walks():
    result = fake_result(events={"dtlb_miss": 10, "l2_tlb_miss": 5})
    bound = _tlb_bound(result)
    assert 0 < bound <= 1.0


def test_level3_splits_membound():
    result = run_core("memcpy", LARGE_BOOM, scale=0.3)
    level3 = compute_level3(result)
    base = compute_tma(result)
    total = level3.l1_bound + level3.l2_bound + level3.dram_bound
    assert total == pytest.approx(base.level2["mem_bound"], abs=1e-9)
    assert "MemBound drill-down" in level3.render()


def test_level3_rocket_breakdown_present():
    result = run_core("coremark", ROCKET, scale=0.3)
    level3 = compute_level3(result)
    assert set(level3.core_breakdown) == {
        "load-use", "mul/div", "long-lat", "serialize"}
    assert "CoreBound drill-down" in level3.render()


def test_level3_boom_has_no_interlock_breakdown():
    result = run_core("vvadd", LARGE_BOOM, scale=0.2)
    level3 = compute_level3(result)
    assert level3.core_breakdown == {}
