"""Integration tests for fence accounting (the Table II fence terms).

Fences cause *intended* pipeline flushes; the paper adds the
Fence-retired counter specifically so those slots are not blamed on
speculation ("strictly speaking, we want to avoid considering slots
lost by intended pipeline flushes by fence instructions", §IV-A).
"""

import pytest

from repro.core import compute_tma
from repro.cores import BoomCore, LARGE_BOOM, ROCKET, RocketCore
from repro.isa import AsmBuilder, execute


def fence_kernel(fences: bool, iterations: int = 120):
    builder = AsmBuilder()
    builder.dword("cells", [3] * 8)
    builder.label("_start")
    builder.emit("la a0, cells")
    builder.emit("li s1, 0")
    with builder.loop("work", trip_reg="t0", bound=iterations):
        builder.emit("ld t1, 0(a0)")
        builder.emit("add s1, s1, t1")
        builder.emit("sd s1, 8(a0)")
        if fences:
            builder.emit("fence")
        else:
            builder.emit("add s2, s2, t1")  # same instruction count
    builder.exit(code_reg="s1")
    return execute(builder.assemble(
        name="fences" if fences else "nofences"))


@pytest.fixture(scope="module")
def fence_runs():
    with_fences = fence_kernel(True)
    without = fence_kernel(False)
    return {
        "boom_fenced": BoomCore(LARGE_BOOM).run(with_fences),
        "boom_plain": BoomCore(LARGE_BOOM).run(without),
        "rocket_fenced": RocketCore(ROCKET).run(with_fences),
    }


def test_fences_cost_cycles(fence_runs):
    assert fence_runs["boom_fenced"].cycles \
        > fence_runs["boom_plain"].cycles


def test_fence_retired_counts_every_fence(fence_runs):
    assert fence_runs["boom_fenced"].event("fence_retired") == 120
    assert fence_runs["boom_plain"].event("fence_retired") == 0
    assert fence_runs["rocket_fenced"].event("fence") == 120


def test_fence_slots_not_blamed_on_branch_mispredicts(fence_runs):
    """The fence terms keep M_br_mr low: recovery after fences must not
    inflate the Branch-Mispredict subclass."""
    fenced = compute_tma(fence_runs["boom_fenced"])
    # Almost all flushes in this kernel are fences, so the non-fence
    # flush ratio keeps lost-uop attribution to branch mispredicts near
    # the plain-kernel level.
    assert fenced.metrics["m_tf"] >= 120
    assert fenced.level2["machine_clears"] < 0.01
    # Recovering slots exist (frontend restarts after each fence)...
    assert fence_runs["boom_fenced"].event("recovering") > 100
    # ...and the model books them under BadSpec's recovery bubbles, not
    # under machine clears or resteering.
    assert fenced.level2["recovery_bubbles"] \
        >= fenced.level2["resteering"]


def test_fenced_kernel_dominated_by_backend_or_badspec_not_frontend(
        fence_runs):
    fenced = compute_tma(fence_runs["boom_fenced"])
    assert fenced.level1["frontend"] < 0.25
    assert fenced.top_level_sum() == pytest.approx(1.0)
