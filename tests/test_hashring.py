"""Property tests for the consistent-hash ring.

The ring is the multi-node tier's routing contract: placement must be
deterministic across processes, balanced within 2x of uniform for the
cluster sizes we deploy, and churn-bounded so a join/leave only moves
keys to/from the affected shard.  These tests pin all three down with
real canonical job keys, not synthetic strings, because those are the
keys the gateway actually routes.
"""

import json
import subprocess
import sys

import pytest

from repro.service.hashring import (DEFAULT_VNODES, HashRing,
                                    parse_shard_spec, ring_position,
                                    stable_hash)
from repro.service.job import GridJob, TMAJob

KEYS = [f"job:vvadd+rocket+s{i}" for i in range(2000)]


def _nodes(count):
    return [f"shard-{index}" for index in range(count)]


# ----------------------------------------------------------------------
# Determinism


def test_stable_hash_is_sha_based_not_salted():
    # Known-answer: first 8 bytes of sha256(b"vvadd"), big-endian.
    import hashlib

    digest = hashlib.sha256(b"vvadd").digest()
    assert stable_hash("vvadd") == int.from_bytes(digest[:8], "big")


def test_routing_is_stable_across_processes():
    """A fresh interpreter (fresh hash salt) routes identically."""
    ring = HashRing(_nodes(5))
    job = TMAJob(workload="vvadd", config="rocket", scale=0.25)
    grid = GridJob(workload="vvadd", grid="rocket,small-boom", vary=[],
                   scale=0.25)
    keys = KEYS[:50] + [job.job_key(), grid.grid_key()]
    script = (
        "import json, sys\n"
        "from repro.service.hashring import HashRing\n"
        "from repro.service.job import GridJob, TMAJob\n"
        "ring = HashRing(['shard-%d' % i for i in range(5)])\n"
        "keys = json.load(sys.stdin)\n"
        "job = TMAJob(workload='vvadd', config='rocket', scale=0.25)\n"
        "grid = GridJob(workload='vvadd', grid='rocket,small-boom',"
        " vary=[], scale=0.25)\n"
        "keys += [job.job_key(), grid.grid_key()]\n"
        "json.dump(ring.assignment(keys), sys.stdout)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], input=json.dumps(KEYS[:50]),
        capture_output=True, text=True, check=True)
    assert json.loads(proc.stdout) == ring.assignment(keys)


def test_canonical_job_keys_route_like_any_key():
    """job_key()/grid_key() are plain strings to the ring — one owner,
    and the owner is the head of the failover order."""
    ring = HashRing(_nodes(3))
    job = TMAJob(workload="spmv", config="small-boom", scale=0.5)
    key = job.job_key()
    assert ring.owner(key) == ring.owners(key, 3)[0]
    assert len(set(ring.owners(key, 3))) == 3


# ----------------------------------------------------------------------
# Balance


@pytest.mark.parametrize("count", [2, 3, 5, 8])
def test_shares_within_2x_uniform(count):
    ring = HashRing(_nodes(count))
    shares = ring.shares(KEYS)
    uniform = 1.0 / count
    assert set(shares) == set(_nodes(count))
    assert max(shares.values()) <= 2.0 * uniform
    # And every shard owns *something* — no starved member.
    assert min(shares.values()) > 0.0


def test_vnodes_drive_balance():
    """With one virtual point per node, balance is allowed to be bad —
    the default vnode count is what buys the 2x bound above."""
    assert DEFAULT_VNODES >= 64
    ring = HashRing(_nodes(8), vnodes=DEFAULT_VNODES)
    assert len(ring.positions("shard-0")) == DEFAULT_VNODES


# ----------------------------------------------------------------------
# Bounded churn


@pytest.mark.parametrize("count", [2, 3, 5])
def test_join_only_steals_keys_for_the_new_node(count):
    before = HashRing(_nodes(count)).assignment(KEYS)
    grown = HashRing(_nodes(count))
    grown.add("joiner")
    after = grown.assignment(KEYS)
    moved = {key for key in KEYS if before[key] != after[key]}
    # Every moved key landed on the joiner; nobody else swapped keys.
    assert all(after[key] == "joiner" for key in moved)
    # And the joiner actually took a meaningful slice.
    assert len(moved) > 0


@pytest.mark.parametrize("count", [3, 5, 8])
def test_leave_only_moves_the_leavers_keys(count):
    ring = HashRing(_nodes(count))
    before = ring.assignment(KEYS)
    ring.remove("shard-0")
    after = ring.assignment(KEYS)
    moved = {key for key in KEYS if before[key] != after[key]}
    assert moved == {key for key in KEYS if before[key] == "shard-0"}


def test_failover_order_matches_post_removal_owner():
    """owners()[1] is exactly where the key lands if the owner dies."""
    ring = HashRing(_nodes(5))
    for key in KEYS[:200]:
        first, second = ring.owners(key, 2)
        survivor = HashRing(_nodes(5))
        survivor.remove(first)
        assert survivor.owner(key) == second


# ----------------------------------------------------------------------
# Membership / spec parsing


def test_add_is_idempotent_and_remove_raises_on_absent():
    ring = HashRing(["a", "b"])
    ring.add("a")
    assert len(ring) == 2
    with pytest.raises(KeyError):
        ring.remove("zz")
    assert "a" in ring and "zz" not in ring


def test_to_payload_reports_first_vnode_positions():
    ring = HashRing(["a", "b"])
    payload = ring.to_payload()
    assert payload["vnodes"] == DEFAULT_VNODES
    assert payload["nodes"] == {"a": ring_position("a"),
                                "b": ring_position("b")}


def test_parse_shard_spec_named_and_bare():
    named = parse_shard_spec("s1=http://h:1,s2=http://h:2/")
    assert named == {"s1": "http://h:1", "s2": "http://h:2"}
    bare = parse_shard_spec("http://h:1,http://h:2")
    assert bare == {"shard-0": "http://h:1", "shard-1": "http://h:2"}
    with pytest.raises(ValueError):
        parse_shard_spec("s1=http://h:1,s1=http://h:2")
    with pytest.raises(ValueError):
        parse_shard_spec("")
