"""Unit tests for the hierarchical TMA tree."""

import pytest

from repro.core import (TmaInputs, build_tree, compute_level3,
                        compute_tma, render_tree)
from repro.cores import LARGE_BOOM, ROCKET
from repro.tools import run_core


def boom_result(**events):
    base = {"cycles": 1000}
    base.update(events)
    inputs = TmaInputs(core="boom", workload="w", config_name="c",
                       cycles=base.pop("cycles"), commit_width=3,
                       events=base)
    return compute_tma(inputs)


def test_tree_has_four_top_level_classes():
    tree = build_tree(boom_result(uops_retired=900))
    assert [c.name for c in tree.children] == [
        "Retiring", "BadSpeculation", "Frontend", "Backend"]


def test_tree_fractions_match_result():
    result = boom_result(uops_retired=900, fetch_bubbles=300,
                         dcache_blocked=600)
    tree = build_tree(result)
    assert tree.child("Retiring").fraction \
        == pytest.approx(result.level1["retiring"])
    backend = tree.child("Backend")
    assert backend.child("MemBound").fraction \
        == pytest.approx(result.level2["mem_bound"])


def test_boom_badspec_subtree():
    result = boom_result(uops_retired=800, uops_issued=1000,
                         br_mispredict=10, recovering=40, flush=2)
    tree = build_tree(result)
    mispredicts = tree.child("BadSpeculation").child("BranchMispredicts")
    assert [c.name for c in mispredicts.children] == [
        "Resteering", "RecoveryBubbles"]


def test_rocket_corebound_subtree():
    result = compute_tma(TmaInputs(
        core="rocket", workload="w", config_name="Rocket", cycles=1000,
        commit_width=1,
        events={"instr_retired": 600, "load_use_interlock": 50,
                "muldiv_interlock": 30, "long_latency_interlock": 20}))
    tree = build_tree(result)
    core = tree.child("Backend").child("CoreBound")
    names = [c.name for c in core.children]
    assert names == ["LoadUse", "MulDiv", "LongLatency"]
    assert core.child("LoadUse").fraction == pytest.approx(0.05)


def test_level3_leaves_attach_under_membound():
    result = run_core("memcpy", LARGE_BOOM, scale=0.3)
    base = compute_tma(result)
    level3 = compute_level3(result, base)
    tree = build_tree(base, level3=level3)
    mem = tree.child("Backend").child("MemBound")
    assert {c.name for c in mem.children} == {
        "L1-bound", "L2-bound", "DRAM-bound"}
    assert mem.child("DRAM-bound").fraction \
        == pytest.approx(level3.dram_bound)


def test_dominant_path_follows_biggest_class():
    result = boom_result(uops_retired=300, dcache_blocked=2400)
    path = build_tree(result).dominant_path()
    names = [node.name for node in path]
    assert names[1] == "Backend"
    assert names[2] == "MemBound"


def test_walk_preorder_depths():
    tree = build_tree(boom_result(uops_retired=900))
    depths = [depth for depth, _ in tree.walk()]
    assert depths[0] == 0
    assert max(depths) >= 2


def test_child_lookup_error():
    tree = build_tree(boom_result(uops_retired=900))
    with pytest.raises(KeyError):
        tree.child("Mystery")


def test_render_tree_output():
    result = run_core("vvadd", ROCKET, scale=0.2)
    text = render_tree(compute_tma(result))
    assert "TMA hierarchy: vvadd" in text
    assert "MemBound" in text
    assert "LoadUse" in text
