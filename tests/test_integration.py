"""End-to-end integration tests: the paper's qualitative claims.

These run the full pipeline (assemble -> execute -> timing model -> TMA)
at reduced scale and assert the *shape* of each headline result, i.e.
who wins and in which direction — the reproduction's contract.
"""

import pytest

from repro.core import compute_tma
from repro.cores import BoomCore, LARGE_BOOM, ROCKET
from repro.pmu import (AddWiresCounterBank, DistributedCounterBank,
                       ScalarCounterBank, new_events_for_core)
from repro.tools import rocket_with_l1d, run_core, run_tma
from repro.trace import (analyze_overlap, boom_tma_bundle, capture_trace,
                         modal_length, recovery_sequences, temporal_tma,
                         validate_against_counters)
from repro.workloads import build_trace

SCALE = 0.5


def tma(name, config, scale=SCALE):
    return run_tma(name, config, scale=scale)


# ---------------------------------------------------------------------------
# §V-A headline shapes
# ---------------------------------------------------------------------------

def test_qsort_badspec_dominates_rsort_on_rocket():
    """qsort is Bad-Speculation bound; rsort is near-ideal (§V-A)."""
    qsort = tma("qsort", ROCKET)
    rsort = tma("rsort", ROCKET)
    assert qsort.level1["bad_speculation"] \
        > 5 * rsort.level1["bad_speculation"]
    assert rsort.ipc > qsort.ipc * 0.8


def test_memcpy_memory_bound_on_both_cores():
    for config in (ROCKET, LARGE_BOOM):
        result = tma("memcpy", config)
        assert result.level1["backend"] > 0.35
        assert result.level2["mem_bound"] > result.level2["core_bound"]


def test_boom_ipc_beats_rocket_on_ilp_friendly_code():
    for name in ("dhrystone", "coremark"):
        rocket = tma(name, ROCKET)
        boom = tma(name, LARGE_BOOM)
        assert boom.ipc > 1.7 * rocket.ipc


def test_spec_mcf_and_xalancbmk_backend_bound_on_boom():
    """Fig. 7g: 505.mcf_r and 523.xalancbmk_r are ~80% Backend."""
    for name in ("505.mcf_r", "523.xalancbmk_r"):
        result = tma(name, LARGE_BOOM)
        assert result.level1["backend"] > 0.6
        assert result.level2["mem_bound"] > 0.5


def test_spec_x264_high_retiring_with_badspec():
    result = tma("525.x264_r", LARGE_BOOM)
    assert result.level1["retiring"] > 0.35
    assert result.level1["bad_speculation"] > 0.05


def test_spec_frontend_minimal_but_perlbench_largest():
    """Fig. 7: Frontend remains minimal; perlbench shows the most."""
    frontends = {name: tma(name, LARGE_BOOM).level1["frontend"]
                 for name in ("500.perlbench_r", "505.mcf_r",
                              "541.leela_r", "548.exchange2_r")}
    assert max(frontends.values()) == frontends["500.perlbench_r"]
    for name, value in frontends.items():
        if name != "500.perlbench_r":
            assert value < 0.15


def test_top_level_sums_to_one_across_suite():
    for name in ("qsort", "memcpy", "505.mcf_r", "towers"):
        for config in (ROCKET, LARGE_BOOM):
            result = tma(name, config)
            assert result.top_level_sum() == pytest.approx(1.0, abs=1e-9)
            for value in result.level1.values():
                assert value > -0.05  # no grossly negative class


# ---------------------------------------------------------------------------
# Case studies (Fig. 7c/d/e/f/m/n)
# ---------------------------------------------------------------------------

def test_cs1_smaller_l1d_raises_backend_and_slows_down():
    # Full scale: the 24 KiB table must dominate over cold-start noise.
    big = run_tma("531.deepsjeng_r", rocket_with_l1d(32), scale=1.0)
    small = run_tma("531.deepsjeng_r", rocket_with_l1d(16), scale=1.0)
    assert small.cycles > big.cycles * 1.02
    assert small.level1["backend"] > big.level1["backend"] + 0.02
    assert small.level2["mem_bound"] > big.level2["mem_bound"]


def test_cs2_rocket_branch_inversion():
    """Rocket: base always mispredicted, inverted always correct."""
    base = tma("brmiss", ROCKET)
    inverted = tma("brmiss_inv", ROCKET)
    assert inverted.level1["retiring"] > base.level1["retiring"] + 0.10
    assert base.level1["bad_speculation"] \
        > inverted.level1["bad_speculation"] + 0.10
    assert inverted.level1["bad_speculation"] < 0.05


def test_cs2_boom_branch_inversion_opposite_effect():
    """BOOM: base ~0% BadSpec; the inverted build is the slower one."""
    base = tma("brmiss", LARGE_BOOM)
    inverted = tma("brmiss_inv", LARGE_BOOM)
    assert base.level1["bad_speculation"] < 0.02
    assert inverted.level1["bad_speculation"] \
        > base.level1["bad_speculation"] + 0.02
    # The inverted build is the slower one in absolute runtime (the
    # paper's "opposite effect"), explained by its Bad Speculation.
    assert inverted.cycles > base.cycles


def test_cs3_scheduling_helps_rocket_more_than_boom():
    rocket_base = tma("coremark", ROCKET)
    rocket_sched = tma("coremark_sched", ROCKET)
    boom_base = tma("coremark", LARGE_BOOM)
    boom_sched = tma("coremark_sched", LARGE_BOOM)
    rocket_gain = rocket_base.cycles / rocket_sched.cycles - 1
    boom_gain = boom_base.cycles / boom_sched.cycles - 1
    assert rocket_gain > 0.02            # paper: ~4%
    assert abs(boom_gain) < 0.03         # paper: ~0.3%
    assert rocket_gain > boom_gain
    # The gain is explained by the Backend (Core Bound) category.
    assert rocket_base.level2["core_bound"] \
        > rocket_sched.level2["core_bound"]


# ---------------------------------------------------------------------------
# Counter architectures on a real core run
# ---------------------------------------------------------------------------

def test_counter_architectures_agree_on_real_run():
    trace = build_trace("median", scale=SCALE)
    core = BoomCore(LARGE_BOOM)
    events = [e.name for e in new_events_for_core("boom")]
    scalar = ScalarCounterBank("boom", events)
    adders = AddWiresCounterBank("boom", events)
    distributed = DistributedCounterBank("boom", events)
    for bank in (scalar, adders, distributed):
        core.add_observer(bank)
    core.run(trace)
    distributed.drain()
    for event in events:
        exact = scalar.read_event(event)
        assert adders.read_event(event) == exact
        software = distributed.read_event(event)
        assert software <= exact
        assert exact - software <= distributed.undercount_bound(event)


# ---------------------------------------------------------------------------
# Temporal TMA validation (Fig. 4's validation loop, Table VI)
# ---------------------------------------------------------------------------

def test_temporal_tma_close_to_counter_tma_on_boom():
    trace = build_trace("median", scale=SCALE)
    core = BoomCore(LARGE_BOOM)
    tracer = capture_trace(core, trace, boom_tma_bundle(
        LARGE_BOOM.decode_width, LARGE_BOOM.issue_width))
    signals = {f.name: tracer.signal(f.name)
               for f in tracer.bundle.fields}
    temporal = temporal_tma(signals, LARGE_BOOM.decode_width)

    counters = run_core("median", LARGE_BOOM, scale=SCALE)
    counter_tma = compute_tma(counters)
    deltas = validate_against_counters(temporal, counter_tma.level1)
    assert deltas["retiring"] < 0.02
    assert deltas["frontend"] < 0.05


def test_overlap_bound_is_small_fraction_of_slots():
    trace = build_trace("mergesort", scale=SCALE)
    tracer = capture_trace(BoomCore(LARGE_BOOM), trace, boom_tma_bundle(
        LARGE_BOOM.decode_width, LARGE_BOOM.issue_width))
    signals = {f.name: tracer.signal(f.name)
               for f in tracer.bundle.fields}
    report = analyze_overlap(signals, LARGE_BOOM.decode_width)
    assert report.overlap_fraction < 0.25
    assert report.overlap_slots <= report.total_slots


def test_recovery_cdf_modal_length_matches_model_constant():
    from repro.core.tma import BOOM_RECOVER_LENGTH

    trace = build_trace("qsort", scale=SCALE)
    tracer = capture_trace(BoomCore(LARGE_BOOM), trace, boom_tma_bundle(
        LARGE_BOOM.decode_width, LARGE_BOOM.issue_width))
    lengths = [s.length for s in
               recovery_sequences(tracer.signal("recovering"))]
    assert modal_length(lengths) == BOOM_RECOVER_LENGTH
