"""Unit tests for the assembler: parsing, directives, pseudos, resolution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (AssemblerError, DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE,
                       assemble, execute)


def asm(body: str):
    return assemble(body, name="test")


def test_simple_program_places_instructions():
    program = asm("""
    .text
    _start:
        addi a0, zero, 5
        add a1, a0, a0
    """)
    assert len(program) == 2
    assert program.instructions[0].addr == DEFAULT_TEXT_BASE
    assert program.instructions[1].addr == DEFAULT_TEXT_BASE + 4


def test_label_resolution_forward_and_backward():
    program = asm("""
    top:
        beq zero, zero, bottom
        addi a0, a0, 1
    bottom:
        jal zero, top
    """)
    beq = program.instructions[0]
    jal = program.instructions[2]
    assert beq.imm == program.symbols["bottom"]
    assert jal.imm == program.symbols["top"] == DEFAULT_TEXT_BASE


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        asm("a:\n addi a0, a0, 1\na:\n addi a0, a0, 1")


def test_unknown_instruction_rejected():
    with pytest.raises(AssemblerError):
        asm("frobnicate a0, a1")


def test_undefined_symbol_rejected():
    with pytest.raises(AssemblerError):
        asm("j nowhere")


def test_data_directives_lay_out_little_endian():
    program = asm("""
    .data
    val: .dword 0x0102030405060708
    b:   .byte 0xAA
    h:   .half 0x1234
    w:   .word 0xDEADBEEF
    """)
    base = DEFAULT_DATA_BASE
    assert program.data[base] == 0x08
    assert program.data[base + 7] == 0x01
    assert program.data[base + 8] == 0xAA
    assert program.data[base + 9] == 0x34
    assert program.data[base + 11] == 0xEF


def test_space_and_align():
    program = asm("""
    .data
    a: .byte 1
    .align 3
    b: .dword 2
    """)
    assert program.symbols["b"] % 8 == 0


def test_asciz_terminates():
    program = asm('.data\nmsg: .asciz "hi"')
    base = program.symbols["msg"]
    assert program.data[base] == ord("h")
    assert program.data[base + 2] == 0


def test_equ_constants_usable_in_immediates():
    program = asm("""
    .equ N, 42
    addi a0, zero, N
    """)
    assert program.instructions[0].imm == 42


def test_comments_are_stripped():
    program = asm("""
    addi a0, zero, 1   # hash comment
    addi a0, zero, 2   // slash comment
    addi a0, zero, 3   ; semicolon comment
    """)
    assert len(program) == 3


def test_pseudo_expansions():
    program = asm("""
    nop
    mv a0, a1
    not a2, a3
    neg a4, a5
    seqz a6, a7
    beqz t0, out
    bgt t1, t2, out
    j out
    ret
    out:
        nop
    """)
    mnemonics = [inst.mnemonic for inst in program.instructions]
    assert mnemonics[0] == "addi"          # nop
    assert mnemonics[1] == "addi"          # mv
    assert mnemonics[2] == "xori"          # not
    assert mnemonics[3] == "sub"           # neg
    assert mnemonics[4] == "sltiu"         # seqz
    assert mnemonics[5] == "beq"           # beqz
    assert mnemonics[6] == "blt"           # bgt swaps operands
    assert program.instructions[6].rs1 == program.instructions[6].rs1


def test_bgt_swaps_operands():
    program = asm("bgt t1, t2, done\ndone: nop")
    blt = program.instructions[0]
    # bgt a,b -> blt b,a
    assert blt.mnemonic == "blt"
    assert blt.rs1 == 7   # t2
    assert blt.rs2 == 6   # t1


def test_li_small_single_addi():
    program = asm("li a0, 100")
    assert len(program) == 1
    assert program.instructions[0].mnemonic == "addi"


def test_li_large_expands():
    program = asm("li a0, 0x123456789")
    assert len(program) > 1


def test_la_uses_pcrel_pair():
    program = asm("""
    .data
    thing: .dword 7
    .text
    la a0, thing
    """)
    assert program.instructions[0].mnemonic == "auipc"
    assert program.instructions[1].mnemonic == "addi"


def test_la_resolves_to_symbol_address():
    program = asm("""
    .data
    thing: .dword 77
    .text
    _start:
        la a0, thing
        ld a1, 0(a0)
        mv a0, a1
        li a7, 93
        ecall
    """)
    trace = execute(program)
    assert trace.exit_code == 77


def test_symbol_plus_offset():
    program = asm("""
    .data
    arr: .dword 1, 2, 3
    .text
    _start:
        la a0, arr+16
        ld a1, 0(a0)
        mv a0, a1
        li a7, 93
        ecall
    """)
    assert execute(program).exit_code == 3


def test_csr_names_accepted():
    program = asm("csrr t0, mcycle\ncsrw mhpmevent3, t1")
    assert program.instructions[0].mnemonic == "csrrs"
    assert program.instructions[1].mnemonic == "csrrw"


def test_entry_defaults_to_start_label():
    program = asm("""
    helper:
        ret
    _start:
        nop
    """)
    assert program.entry == program.symbols["_start"]


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
def test_li_materializes_any_64bit_constant(value):
    program = assemble(f"""
    _start:
        li a0, {value}
        li a7, 93
        ecall
    """)
    trace = execute(program)
    assert trace.exit_code == value
