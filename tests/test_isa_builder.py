"""Unit tests for the programmatic assembly builder."""

from repro.isa import AsmBuilder, execute


def test_minimal_program():
    builder = AsmBuilder()
    builder.label("_start")
    builder.exit(code=7)
    trace = execute(builder.assemble())
    assert trace.exit_code == 7


def test_data_helpers_round_trip():
    builder = AsmBuilder()
    builder.dword("arr", [10, 20, 30])
    builder.space("buf", 16)
    builder.asciz("msg", 'hi "there"')
    builder.label("_start")
    builder.emit("la t0, arr")
    builder.emit("ld a0, 16(t0)")
    builder.exit()
    trace = execute(builder.assemble())
    assert trace.exit_code == 30


def test_loop_context_manager():
    builder = AsmBuilder()
    builder.label("_start")
    builder.emit("li s1, 0")
    with builder.loop("accumulate", trip_reg="t0", bound=10):
        builder.emit("add s1, s1, t0")
    builder.exit(code_reg="s1")
    trace = execute(builder.assemble())
    assert trace.exit_code == sum(range(10))


def test_fresh_labels_are_unique():
    builder = AsmBuilder()
    a = builder.fresh_label()
    b = builder.fresh_label()
    assert a != b
    builder.label("_start")
    builder.emit(f"j {a}")
    builder.label(a)
    builder.emit(f"j {b}")
    builder.label(b)
    builder.exit(code=1)
    assert execute(builder.assemble()).exit_code == 1


def test_call_helper_and_comment():
    builder = AsmBuilder()
    builder.label("_start")
    builder.comment("call a leaf function")
    builder.call("leaf")
    builder.exit()
    builder.label("leaf")
    builder.emit("li a0, 42")
    builder.emit("ret")
    assert execute(builder.assemble()).exit_code == 42


def test_source_renders_sections_in_order():
    builder = AsmBuilder()
    builder.dword("d", [1])
    builder.label("_start")
    builder.exit(code=0)
    source = builder.source()
    assert source.index(".data") < source.index(".text")
    assert "d:" in source


def test_builder_program_runs_on_core():
    from repro.cores import ROCKET, RocketCore

    builder = AsmBuilder()
    builder.dword("values", list(range(64)))
    builder.label("_start")
    builder.emit("la a0, values")
    builder.emit("li s1, 0")
    with builder.loop("walk", trip_reg="t0", bound=64):
        builder.emit("slli t1, t0, 3")
        builder.emit("add t1, a0, t1")
        builder.emit("ld t2, 0(t1)")
        builder.emit("add s1, s1, t2")
    builder.exit(code_reg="s1")
    program = builder.assemble(name="builder-demo")
    trace = execute(program)
    assert trace.exit_code == sum(range(64))
    result = RocketCore(ROCKET).run(trace)
    assert result.instret == len(trace)
