"""Unit tests for the CSR address map, Program container, and configs."""

import pytest

from repro.cores import (ALL_BOOM_CONFIGS, CONFIGS_BY_NAME, LARGE_BOOM,
                         ROCKET, config_by_name)
from repro.isa import Instruction, Program, assemble
from repro.isa.csrs import (CSR_ADDRS, CSR_NAMES,
                            mhpmcounter_addr, mhpmevent_addr)


# ---------------------------------------------------------------------------
# CSR map
# ---------------------------------------------------------------------------

def test_csr_names_cover_all_hpm_counters():
    for index in range(3, 32):
        assert f"mhpmcounter{index}" in CSR_ADDRS
        assert f"mhpmevent{index}" in CSR_ADDRS
        assert f"hpmcounter{index}" in CSR_ADDRS


def test_csr_addresses_match_privileged_spec():
    assert CSR_ADDRS["mcycle"] == 0xB00
    assert CSR_ADDRS["minstret"] == 0xB02
    assert CSR_ADDRS["mhpmcounter3"] == 0xB03
    assert CSR_ADDRS["mhpmevent3"] == 0x323
    assert CSR_ADDRS["mcountinhibit"] == 0x320
    assert CSR_ADDRS["cycle"] == 0xC00


def test_helper_functions_and_bounds():
    assert mhpmcounter_addr(3) == 0xB03
    assert mhpmevent_addr(31) == 0x323 + 28
    with pytest.raises(ValueError):
        mhpmcounter_addr(2)
    with pytest.raises(ValueError):
        mhpmevent_addr(32)


def test_reverse_map_consistent():
    for name, addr in CSR_ADDRS.items():
        assert CSR_NAMES[addr] == name or CSR_NAMES[addr] in CSR_ADDRS


# ---------------------------------------------------------------------------
# Program container
# ---------------------------------------------------------------------------

def simple_program() -> Program:
    return assemble("""
    _start:
        addi a0, zero, 1
        addi a0, a0, 2
        jal zero, _start
    """)


def test_program_addresses_sequential():
    program = simple_program()
    addresses = [inst.addr for inst in program.instructions]
    assert addresses == [program.text_base + 4 * i
                         for i in range(len(program))]
    assert program.text_end == program.text_base + 12
    assert program.code_bytes == 12


def test_instruction_lookup():
    program = simple_program()
    assert program.instruction_at(program.text_base + 4).imm == 2
    assert program.has_instruction(program.text_base)
    assert not program.has_instruction(program.text_base + 100)
    with pytest.raises(KeyError):
        program.instruction_at(0xDEAD)


def test_index_and_resolve():
    program = simple_program()
    assert program.index_of(program.text_base + 8) == 2
    assert program.resolve("_start") == program.text_base


def test_instruction_rejects_unknown_mnemonic():
    with pytest.raises(ValueError):
        Instruction("vadd.vv")


# ---------------------------------------------------------------------------
# Table IV configs
# ---------------------------------------------------------------------------

def test_table4_widths():
    widths = {c.name: (c.fetch_width, c.decode_width, c.issue_width)
              for c in ALL_BOOM_CONFIGS}
    assert widths["SmallBOOMV3"] == (4, 1, 3)
    assert widths["MediumBOOMV3"] == (4, 2, 4)
    assert widths["LargeBOOMV3"] == (8, 3, 5)
    assert widths["MegaBOOMV3"] == (8, 4, 8)
    assert widths["GigaBOOMV3"] == (8, 5, 9)


def test_table4_backend_resources():
    large = config_by_name("large-boom")
    assert large.rob_entries == 96
    assert (large.iq_int, large.iq_mem, large.iq_fp) == (16, 32, 24)
    assert (large.ldq_entries, large.stq_entries, large.mshrs) \
        == (24, 24, 4)


def test_rocket_config():
    assert ROCKET.fetch_width == 2
    assert ROCKET.bht_entries == 512
    assert ROCKET.btb_entries == 28
    assert ROCKET.commit_width == 1


def test_config_lookup_errors():
    with pytest.raises(KeyError):
        config_by_name("tera-boom")
    assert config_by_name("LARGE-BOOM") is LARGE_BOOM
    assert set(CONFIGS_BY_NAME) == {
        "rocket", "small-boom", "medium-boom", "large-boom", "mega-boom",
        "giga-boom"}


def test_fetch_buffer_defaults_to_twice_fetch_width():
    assert LARGE_BOOM.fetch_buffer_size == 2 * LARGE_BOOM.fetch_width
