"""Unit + property tests for the RV64 binary encoder/decoder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (EncodingError, Instruction, assemble, decode,
                       encodable, encode, encode_program)
from repro.workloads import build_program, workload_names


def roundtrip(inst: Instruction) -> Instruction:
    return decode(encode(inst), addr=inst.addr)


def same(a: Instruction, b: Instruction) -> bool:
    return (a.mnemonic == b.mnemonic and a.rd == b.rd and a.rs1 == b.rs1
            and a.rs2 == b.rs2 and a.imm == b.imm and a.csr == b.csr)


def test_known_golden_words():
    # Cross-checked against the RISC-V ISA manual / gnu as output.
    assert encode(Instruction("addi", rd=10, rs1=0, imm=1)) == 0x00100513
    assert encode(Instruction("add", rd=10, rs1=11, rs2=12)) == 0x00C58533
    assert encode(Instruction("ecall")) == 0x00000073
    assert encode(Instruction("ld", rd=5, rs1=10, imm=8)) == 0x00853283
    assert encode(Instruction("sd", rs1=10, rs2=5, imm=8)) == 0x00553423
    assert encode(Instruction("jalr", rd=0, rs1=1, imm=0)) == 0x00008067


def test_branch_pc_relative_conversion():
    branch = Instruction("beq", rs1=1, rs2=2, imm=0x8000_0040,
                         addr=0x8000_0000)
    word = encode(branch)
    back = decode(word, addr=0x8000_0000)
    assert back.imm == 0x8000_0040     # absolute target restored


def test_backward_branch():
    branch = Instruction("bne", rs1=3, rs2=4, imm=0x8000_0000,
                         addr=0x8000_0100)
    assert roundtrip(branch).imm == 0x8000_0000


def test_jal_range_check():
    far = Instruction("jal", rd=1, imm=0x8020_0000, addr=0x8000_0000)
    with pytest.raises(EncodingError):
        encode(far)


def test_branch_offset_must_fit():
    far = Instruction("beq", rs1=1, rs2=2, imm=0x8001_0000,
                      addr=0x8000_0000)
    with pytest.raises(EncodingError):
        encode(far)


def test_immediate_range_check():
    with pytest.raises(EncodingError):
        encode(Instruction("addi", rd=1, rs1=1, imm=5000))


def test_csr_round_trip():
    inst = Instruction("csrrw", rd=5, rs1=6, csr=0xB03)
    assert same(inst, roundtrip(inst))
    imm_inst = Instruction("csrrwi", rd=0, imm=7, csr=0x320)
    assert same(imm_inst, roundtrip(imm_inst))


def test_shift_round_trip_rv64_shamt():
    inst = Instruction("srai", rd=5, rs1=6, imm=45)   # 6-bit shamt
    assert same(inst, roundtrip(inst))
    w_inst = Instruction("sraiw", rd=5, rs1=6, imm=13)
    assert same(w_inst, roundtrip(w_inst))


def test_negative_auipc_hi_round_trips():
    inst = Instruction("auipc", rd=10, imm=-3, addr=0x8010_0000)
    assert roundtrip(inst).imm == -3


def test_fp_encodings_round_trip():
    for mnemonic in ("fadd.d", "fmul.d", "fdiv.d", "fsqrt.d",
                     "fcvt.d.l", "fcvt.l.d", "feq.d"):
        inst = Instruction(mnemonic, rd=1, rs1=2, rs2=3)
        if mnemonic in ("fsqrt.d", "fcvt.d.l", "fcvt.l.d"):
            inst = Instruction(mnemonic, rd=1, rs1=2)
        assert roundtrip(inst).mnemonic == mnemonic


def test_decode_rejects_garbage():
    with pytest.raises(EncodingError):
        decode(0xFFFFFFFF)
    with pytest.raises(EncodingError):
        decode(0x0000007F)


def test_encode_program_length():
    program = assemble("_start:\n nop\n nop\n ecall")
    blob = encode_program(program)
    assert len(blob) == 4 * len(program)
    # First word decodes back to the nop (addi x0, x0, 0).
    word = int.from_bytes(blob[:4], "little")
    nop = decode(word)
    assert nop.mnemonic == "addi" and nop.rd == 0 and nop.imm == 0


@pytest.mark.parametrize("name", workload_names())
def test_every_suite_instruction_encodes_and_roundtrips(name):
    """The whole workload suite must be emittable as machine code."""
    program = build_program(name, scale=0.2)
    for inst in program.instructions:
        assert encodable(inst), f"{name}: {inst}"
        back = decode(encode(inst), addr=inst.addr)
        assert same(inst, back), f"{name}: {inst} -> {back}"


@settings(max_examples=60, deadline=None)
@given(rd=st.integers(0, 31), rs1=st.integers(0, 31),
       imm=st.integers(-2048, 2047))
def test_property_itype_roundtrip(rd, rs1, imm):
    inst = Instruction("addi", rd=rd, rs1=rs1, imm=imm)
    assert same(inst, roundtrip(inst))


@settings(max_examples=60, deadline=None)
@given(rs1=st.integers(0, 31), rs2=st.integers(0, 31),
       offset=st.integers(-2048, 2047))
def test_property_branch_roundtrip(rs1, rs2, offset):
    addr = 0x8000_4000
    inst = Instruction("blt", rs1=rs1, rs2=rs2,
                       imm=addr + 2 * offset, addr=addr)
    assert roundtrip(inst).imm == addr + 2 * offset
