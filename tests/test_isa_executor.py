"""Unit tests for the functional executor's architectural semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import ExecutionError, assemble, execute
from repro.isa.executor import FunctionalExecutor

U64 = (1 << 64) - 1


def run_exit(body: str) -> int:
    """Assemble a fragment that leaves the result in a0 and exits."""
    program = assemble(f"""
    _start:
    {body}
        li a7, 93
        ecall
    """)
    return execute(program).exit_code


def test_basic_arithmetic():
    assert run_exit("li a0, 2\n li t0, 3\n add a0, a0, t0") == 5
    assert run_exit("li a0, 2\n li t0, 3\n sub a0, a0, t0") == -1
    assert run_exit("li a0, 6\n li t0, 3\n mul a0, a0, t0") == 18


def test_logic_ops():
    assert run_exit("li a0, 0b1100\n andi a0, a0, 0b1010") == 0b1000
    assert run_exit("li a0, 0b1100\n ori a0, a0, 0b0011") == 0b1111
    assert run_exit("li a0, 0b1100\n xori a0, a0, 0b1010") == 0b0110


def test_shifts_signed_and_unsigned():
    assert run_exit("li a0, -8\n srai a0, a0, 1") == -4
    assert run_exit("li a0, 1\n slli a0, a0, 10") == 1024
    # srli of a negative value is a logical shift of the 64-bit pattern
    assert run_exit("li a0, -1\n srli a0, a0, 60") == 15


def test_comparisons():
    assert run_exit("li t0, -1\n li t1, 1\n slt a0, t0, t1") == 1
    assert run_exit("li t0, -1\n li t1, 1\n sltu a0, t0, t1") == 0


def test_word_ops_sign_extend():
    assert run_exit("li a0, 0x7FFFFFFF\n addiw a0, a0, 1") == -(1 << 31)
    assert run_exit("li a0, 0xFFFFFFFF\n sext.w a0, a0") == -1


def test_division_semantics():
    assert run_exit("li t0, 7\n li t1, -2\n div a0, t0, t1") == -3
    assert run_exit("li t0, 7\n li t1, -2\n rem a0, t0, t1") == 1
    assert run_exit("li t0, 7\n li t1, 0\n div a0, t0, t1") == -1
    assert run_exit("li t0, 7\n li t1, 0\n remu a0, t0, t1") == 7


def test_x0_writes_are_discarded():
    assert run_exit("li a0, 0\n addi zero, zero, 55\n add a0, a0, zero") == 0


def test_memory_round_trip_widths():
    body = """
        la t0, buf
        li t1, -2
        sd t1, 0(t0)
        lw a0, 0(t0)
    """
    program = assemble(f"""
    .data
    buf: .space 16
    .text
    _start:
    {body}
        li a7, 93
        ecall
    """)
    assert execute(program).exit_code == -2  # sign-extended lw


def test_unsigned_loads_zero_extend():
    program = assemble("""
    .data
    buf: .space 8
    .text
    _start:
        la t0, buf
        li t1, -1
        sb t1, 0(t0)
        lbu a0, 0(t0)
        li a7, 93
        ecall
    """)
    assert execute(program).exit_code == 255


def test_branches_direct_control_flow():
    assert run_exit("""
        li a0, 0
        li t0, 5
        li t1, 0
    loop:
        addi a0, a0, 2
        addi t1, t1, 1
        blt t1, t0, loop
    """) == 10


def test_jal_links_return_address():
    program = assemble("""
    _start:
        call fn
        li a7, 93
        ecall
    fn:
        li a0, 9
        ret
    """)
    assert execute(program).exit_code == 9


def test_jalr_indirect_target():
    program = assemble("""
    _start:
        la t0, fn
        jalr ra, t0, 0
        li a7, 93
        ecall
    fn:
        li a0, 31
        ret
    """)
    assert execute(program).exit_code == 31


def test_fp_basic_arithmetic():
    assert run_exit("""
        li t0, 3
        fcvt.d.l ft0, t0
        li t1, 4
        fcvt.d.l ft1, t1
        fmul.d ft2, ft0, ft1
        fadd.d ft2, ft2, ft0
        fcvt.l.d a0, ft2
    """) == 15


def test_fp_compare_writes_int():
    assert run_exit("""
        li t0, 2
        fcvt.d.l ft0, t0
        li t1, 5
        fcvt.d.l ft1, t1
        flt.d a0, ft0, ft1
    """) == 1


def test_fp_load_store():
    program = assemble("""
    .data
    buf: .space 8
    .text
    _start:
        li t0, 42
        fcvt.d.l ft0, t0
        la t1, buf
        fsd ft0, 0(t1)
        fld ft1, 0(t1)
        fcvt.l.d a0, ft1
        li a7, 93
        ecall
    """)
    assert execute(program).exit_code == 42


def test_csr_write_then_read():
    assert run_exit("""
        li t0, 0x123
        csrw mhpmevent3, t0
        csrr a0, mhpmevent3
    """) == 0x123


def test_csr_set_and_clear_bits():
    assert run_exit("""
        li t0, 0b1100
        csrw mhpmevent3, t0
        li t1, 0b0110
        csrs mhpmevent3, t1
        csrr a0, mhpmevent3
    """) == 0b1110


def test_amo_add_returns_old_value():
    program = assemble("""
    .data
    cnt: .dword 10
    .text
    _start:
        la t0, cnt
        li t1, 5
        amoadd.d a0, t1, (t0)
        ld t2, 0(t0)
        add a0, a0, t2
        li a7, 93
        ecall
    """)
    assert execute(program).exit_code == 10 + 15


def test_exit_code_comes_from_a0():
    assert run_exit("li a0, 1234") == 1234


def test_halt_reason_ecall():
    program = assemble("_start:\n li a7, 93\n ecall")
    assert execute(program).halt_reason == "ecall"


def test_fell_off_text_halt():
    program = assemble("_start:\n addi a0, a0, 1")
    trace = execute(program)
    assert trace.halt_reason == "fell-off-text"


def test_instruction_budget_enforced():
    program = assemble("""
    _start:
    loop:
        j loop
    """)
    with pytest.raises(ExecutionError):
        FunctionalExecutor(program, max_instructions=1000).run()


def test_dyn_trace_records_memory_addresses():
    program = assemble("""
    .data
    v: .dword 5
    .text
    _start:
        la t0, v
        ld a0, 0(t0)
        li a7, 93
        ecall
    """)
    trace = execute(program)
    loads = [i for i in trace if i.is_load]
    assert len(loads) == 1
    assert loads[0].mem_addr == program.symbols["v"]
    assert loads[0].mem_width == 8


def test_dyn_trace_branch_outcomes():
    program = assemble("""
    _start:
        li t0, 1
        beqz t0, skip      # not taken
        beq zero, zero, skip  # taken
        addi a0, a0, 1
    skip:
        li a7, 93
        ecall
    """)
    trace = execute(program)
    branches = [i for i in trace if i.is_branch]
    assert [b.taken for b in branches] == [False, True]
    assert branches[1].next_pc == program.symbols["skip"]


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
       st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
def test_add_sub_match_python_semantics(a, b):
    assert run_exit(f"li t0, {a}\n li t1, {b}\n add a0, t0, t1") == a + b
    assert run_exit(f"li t0, {a}\n li t1, {b}\n sub a0, t0, t1") == a - b


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
       st.integers(min_value=1, max_value=2 ** 31 - 1))
def test_div_rem_invariant(a, b):
    q = run_exit(f"li t0, {a}\n li t1, {b}\n div a0, t0, t1")
    r = run_exit(f"li t0, {a}\n li t1, {b}\n rem a0, t0, t1")
    assert q * b + r == a
