"""Unit and property tests for the sparse memory model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import SparseMemory
from repro.isa.errors import MemoryError_


def test_uninitialized_reads_zero():
    memory = SparseMemory()
    assert memory.read(0x8000_0000, 8) == 0
    assert memory.read_byte(12345) == 0


def test_byte_write_read():
    memory = SparseMemory()
    memory.write_byte(100, 0xAB)
    assert memory.read_byte(100) == 0xAB


def test_little_endian_layout():
    memory = SparseMemory()
    memory.write(0x1000, 0x0102030405060708, 8)
    assert memory.read_byte(0x1000) == 0x08
    assert memory.read_byte(0x1007) == 0x01


def test_cross_page_access():
    memory = SparseMemory()
    addr = 0x1FFD  # spans a 4 KiB page boundary
    memory.write(addr, 0xAABBCCDDEE, 8)
    assert memory.read(addr, 8) == 0xAABBCCDDEE & ((1 << 64) - 1)


def test_signed_reads():
    memory = SparseMemory()
    memory.write(0x2000, 0xFF, 1)
    assert memory.read_signed(0x2000, 1) == -1
    memory.write(0x2001, 0x7F, 1)
    assert memory.read_signed(0x2001, 1) == 127


def test_invalid_size_rejected():
    memory = SparseMemory()
    with pytest.raises(MemoryError_):
        memory.read(0, 3)
    with pytest.raises(MemoryError_):
        memory.write(0, 1, 5)


def test_image_load():
    memory = SparseMemory({0x10: 0xAA, 0x11: 0xBB})
    assert memory.read(0x10, 2) == 0xBBAA


def test_dump():
    memory = SparseMemory()
    memory.write(0x3000, 0x1234, 2)
    assert memory.dump(0x3000, 2) == b"\x34\x12"


def test_footprint_counts_pages():
    memory = SparseMemory()
    memory.write_byte(0, 1)
    memory.write_byte(4096, 1)
    assert memory.footprint_bytes == 2 * 4096


@settings(max_examples=100, deadline=None)
@given(addr=st.integers(min_value=0, max_value=2 ** 48),
       value=st.integers(min_value=0, max_value=2 ** 64 - 1),
       size=st.sampled_from([1, 2, 4, 8]))
def test_write_read_round_trip(addr, value, size):
    memory = SparseMemory()
    memory.write(addr, value, size)
    assert memory.read(addr, size) == value & ((1 << (8 * size)) - 1)


@settings(max_examples=50, deadline=None)
@given(addr=st.integers(min_value=0, max_value=2 ** 32),
       value=st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
def test_signed_round_trip_64(addr, value):
    memory = SparseMemory()
    memory.write(addr, value & ((1 << 64) - 1), 8)
    assert memory.read_signed(addr, 8) == value
