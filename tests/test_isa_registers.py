"""Unit tests for register-name parsing."""

import pytest

from repro.isa.registers import (FP_ABI_NAMES, INT_ABI_NAMES, fp_reg_name,
                                 int_reg_name, is_fp_reg, is_int_reg,
                                 parse_fp_reg, parse_int_reg)


def test_numeric_names_map_to_index():
    for index in range(32):
        assert parse_int_reg(f"x{index}") == index


def test_abi_names_match_spec_order():
    assert parse_int_reg("zero") == 0
    assert parse_int_reg("ra") == 1
    assert parse_int_reg("sp") == 2
    assert parse_int_reg("a0") == 10
    assert parse_int_reg("a7") == 17
    assert parse_int_reg("t6") == 31


def test_fp_alias_for_s0():
    assert parse_int_reg("fp") == parse_int_reg("s0") == 8


def test_case_and_whitespace_insensitive():
    assert parse_int_reg("  T0 ") == 5


def test_fp_registers():
    assert parse_fp_reg("f0") == 0
    assert parse_fp_reg("ft0") == 0
    assert parse_fp_reg("fa0") == 10
    assert parse_fp_reg("ft11") == 31


def test_unknown_register_raises():
    with pytest.raises(KeyError):
        parse_int_reg("x32")
    with pytest.raises(KeyError):
        parse_fp_reg("g3")


def test_predicates():
    assert is_int_reg("s11")
    assert not is_int_reg("fs1")
    assert is_fp_reg("fs1")
    assert not is_fp_reg("s1")


def test_round_trip_names():
    for index in range(32):
        assert parse_int_reg(int_reg_name(index)) == index
        assert parse_fp_reg(fp_reg_name(index)) == index


def test_abi_tables_have_32_unique_names():
    assert len(set(INT_ABI_NAMES)) == 32
    assert len(set(FP_ABI_NAMES)) == 32
