"""Multicore interference TMA: oracle identity, attribution, service.

The load-bearing guarantees:

- **Solo-oracle identity**: a scenario with one active core — via the
  threadless shortcut or the full uncore + turnstile lockstep stack —
  is bit-identical to :func:`repro.tools.tma_tool.run_core`, and an
  idle neighbor induces exactly zero neighbor attribution.
- **Slot conservation under sharing**: per-core level-1 TMA slots sum
  to 1.0 and ``self + neighbor == mem_bound`` exactly (as floats) on
  every scenario in the registry.
- **Determinism**: the turnstile serializes cycles, so repeated runs
  are bit-identical.
"""

import dataclasses
import time

import pytest

from repro.core.tma import split_slots
from repro.cores import config_by_name
from repro.multicore import (
    CoreSlot,
    MulticoreError,
    Scenario,
    SharedUncore,
    get_scenario,
    run_scenario,
    run_scenario_payload,
    scenario_cache_key,
    scenario_names,
)
from repro.tools.tma_tool import run_core
from repro.uarch.cache import Cache, L1D_32K, NonBlockingCache

SCALE = 0.1

#: >= 10 registry workloads, each pinned on Rocket and BOOM.
ORACLE_WORKLOADS = ("median", "vvadd", "qsort", "towers", "mm", "spmv",
                    "mergesort", "multiply", "dhrystone", "coremark")


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


def result_digest(result):
    return (
        result.cycles,
        result.instret,
        dataclasses.astuple(result.l1i_stats),
        dataclasses.astuple(result.l1d_stats),
        dataclasses.astuple(result.l2_stats),
        dataclasses.astuple(result.predictor_stats),
    )


def solo_scenario(workload, config, idle_neighbor=False):
    slots = [CoreSlot(workload, config)]
    if idle_neighbor:
        slots.append(CoreSlot("idle", "rocket"))
    return Scenario(name=f"solo-{workload}", description="test",
                    slots=tuple(slots), scale=SCALE)


# ----------------------------------------------------------------------
# Solo-oracle identity


@pytest.mark.parametrize("config", ["rocket", "large-boom"])
@pytest.mark.parametrize("workload", ORACLE_WORKLOADS)
def test_threadless_solo_is_bit_identical_to_run_core(workload, config):
    result = run_scenario(solo_scenario(workload, config))
    core = result.core_at(0)
    solo = run_core(workload, config_by_name(config), scale=SCALE,
                    use_cache=False)
    assert result_digest(core.result) == result_digest(solo)
    assert core.attribution.neighbor_share == 0.0
    assert core.attribution.self_share == core.attribution.mem_bound


@pytest.mark.parametrize("config", ["rocket", "large-boom"])
@pytest.mark.parametrize("workload", ["median", "spmv"])
def test_lockstep_solo_with_idle_neighbor_matches_oracle(workload, config):
    """One active core through the full uncore + turnstile stack."""
    scenario = solo_scenario(workload, config, idle_neighbor=True)
    result = run_scenario(scenario, force_lockstep=True)
    core = result.core_at(0)
    solo = run_core(workload, config_by_name(config), scale=SCALE,
                    use_cache=False)
    assert result_digest(core.result) == result_digest(solo)
    # The idle-neighbor invariant: exactly zero, not approximately.
    assert core.attribution.neighbor_share == 0.0
    assert core.uncore.neighbor_induced_misses == 0
    assert core.uncore.bus_wait_neighbor == 0


@pytest.mark.parametrize("engine", ["columnar", "objects"])
def test_solo_identity_holds_on_both_engines(engine):
    result = run_scenario(solo_scenario("vvadd", "rocket"), engine=engine)
    solo = run_core("vvadd", config_by_name("rocket"), scale=SCALE,
                    use_cache=False, engine=engine)
    assert result_digest(result.core_at(0).result) == result_digest(solo)


# ----------------------------------------------------------------------
# Attribution invariants across the scenario registry


@pytest.mark.parametrize("name", scenario_names())
@pytest.mark.parametrize("engine", ["columnar", "objects"])
def test_scenario_attribution_invariants(name, engine):
    scenario = get_scenario(name).with_overrides(scale=SCALE)
    result = run_scenario(scenario, engine=engine)
    assert result.cores, "scenario ran no cores"
    for core in result.cores:
        level1_sum = sum(core.tma.level1.values())
        assert level1_sum == pytest.approx(1.0, abs=1e-9)
        attribution = core.attribution
        # Exact float identity, not approx: split_slots pins it.
        assert (attribution.self_share + attribution.neighbor_share
                == attribution.mem_bound)
        assert attribution.self_share >= 0.0
        assert attribution.neighbor_share >= 0.0
        assert 0.0 <= attribution.neighbor_fraction <= 1.0
        metrics = core.uncore
        assert (metrics.self_misses + metrics.neighbor_induced_misses
                == metrics.misses)
    shares = [core.bandwidth_share for core in result.cores]
    assert sum(shares) == pytest.approx(1.0) or all(s == 0.0
                                                    for s in shares)


def test_repeated_scenario_runs_are_bit_identical():
    scenario = get_scenario("noisy-neighbor").with_overrides(scale=SCALE)
    first = run_scenario(scenario)
    again = run_scenario(scenario)
    assert ([result_digest(c.result) for c in first.cores]
            == [result_digest(c.result) for c in again.cores])
    assert ([c.attribution.to_payload() for c in first.cores]
            == [c.attribution.to_payload() for c in again.cores])
    assert ([c.uncore.to_payload() for c in first.cores]
            == [c.uncore.to_payload() for c in again.cores])


def test_capacity_clash_exercises_neighbor_attribution():
    """The shrunken-L2 scenario must actually produce neighbor misses."""
    result = run_scenario(get_scenario("capacity-clash"))
    induced = sum(c.uncore.neighbor_induced_misses for c in result.cores)
    assert induced > 0
    victim = max(result.cores,
                 key=lambda c: c.attribution.neighbor_share)
    assert victim.attribution.neighbor_share > 0.0


def test_interference_costs_the_victim_cycles():
    """Co-running with an aggressor must not be free."""
    scenario = get_scenario("noisy-neighbor").with_overrides(scale=SCALE)
    shared = run_scenario(scenario)
    solo = run_core("median", config_by_name("rocket"), scale=SCALE,
                    use_cache=False)
    victim = shared.core_at(0)
    assert victim.result.cycles >= solo.cycles
    assert victim.attribution.neighbor_share > 0.0


# ----------------------------------------------------------------------
# Scenario model


def test_with_overrides_pads_with_idle_slots():
    scenario = get_scenario("noisy-neighbor").with_overrides(cores=4)
    assert len(scenario.slots) == 4
    assert [slot.idle for slot in scenario.slots] == [False, False,
                                                      True, True]
    assert len(scenario.active_slots()) == 2


def test_with_overrides_trims_to_one_core():
    scenario = get_scenario("latency-victim").with_overrides(cores=1)
    assert len(scenario.slots) == 1
    assert scenario.slots[0].workload == "qsort"


def test_scenario_validation_rejects_bad_specs():
    with pytest.raises(ValueError):
        get_scenario("noisy-neighbor").with_overrides(cores=9)
    with pytest.raises(ValueError):
        Scenario(name="bad", description="", slots=()).validate()
    with pytest.raises(ValueError):
        Scenario(name="bad", description="",
                 slots=(CoreSlot("idle", "rocket"),)).validate()
    with pytest.raises(KeyError):
        Scenario(name="bad", description="",
                 slots=(CoreSlot("no-such-workload", "rocket"),)).validate()
    with pytest.raises(KeyError):
        get_scenario("no-such-scenario")


def test_core_failure_surfaces_as_multicore_error():
    scenario = get_scenario("noisy-neighbor").with_overrides(scale=SCALE)
    with pytest.raises(MulticoreError):
        run_scenario(scenario, max_cycles=10)


# ----------------------------------------------------------------------
# split_slots (exact-conservation helper)


def test_split_slots_is_exactly_conservative():
    for total, a, b in ((0.417, 1536.0, 122.0), (0.1, 3.0, 7.0),
                        (0.9999, 1e12, 1.0), (0.25, 0.1, 0.1)):
        shares = split_slots(total, a, b)
        assert shares["a"] + shares["b"] == total


def test_split_slots_zero_weight_is_exactly_zero():
    assert split_slots(0.5, 10.0, 0.0) == {"a": 0.5, "b": 0.0}
    assert split_slots(0.5, 0.0, 10.0) == {"a": 0.0, "b": 0.5}
    assert split_slots(0.5, 0.0, 0.0) == {"a": 0.5, "b": 0.0}


# ----------------------------------------------------------------------
# Per-requestor cache stats (uarch seam under the uncore)


def test_single_requestor_stats_match_aggregate():
    cache = Cache(L1D_32K)
    for addr in range(0, 64 * 200, 64):
        cache.access(addr, cycle=0, requestor=3)
    mine = cache.per_requestor(3)
    assert mine.accesses == cache.stats.accesses
    assert mine.misses == cache.stats.misses


def test_requestor_stats_partition_the_aggregate():
    cache = Cache(L1D_32K)
    for addr in range(0, 64 * 100, 64):
        cache.access(addr, cycle=0, requestor=0)
    for addr in range(64 * 50, 64 * 150, 64):
        cache.access(addr, cycle=0, requestor=1)
    total_accesses = sum(s.accesses for s in cache.requestor_stats.values())
    total_misses = sum(s.misses for s in cache.requestor_stats.values())
    assert total_accesses == cache.stats.accesses
    assert total_misses == cache.stats.misses


def test_writebacks_attributed_to_triggering_requestor():
    from repro.uarch.cache import CacheConfig

    tiny = CacheConfig("L1D", 2 * 64, 1, 64, hit_latency=1)
    cache = Cache(tiny)
    cache.access(0, is_store=True, cycle=0, requestor=0)  # dirty set 0
    cache.access(2 * 64, cycle=0, requestor=1)  # evicts requestor 0's line
    assert cache.per_requestor(1).writebacks == cache.stats.writebacks == 1
    assert cache.per_requestor(0).writebacks == 0


def test_nonblocking_cache_forwards_requestor():
    nb = NonBlockingCache(L1D_32K, 4)
    nb.access(0, cycle=0, requestor=7)
    nb.access(64 * 1024, cycle=0, requestor=7)
    stats = nb.cache.per_requestor(7)
    assert stats.accesses == 2
    assert stats.misses == 2


# ----------------------------------------------------------------------
# Shared uncore unit behaviour


def test_uncore_coloring_keeps_requestors_apart():
    uncore = SharedUncore(2)
    addr = 0x1000
    uncore.access(0, addr, False, 100)
    hit, latency = uncore.access(1, addr, False, 200)
    # Same address, different requestor: a fresh (colored) miss, so the
    # second requestor cannot silently hit the first one's line.
    assert not hit
    assert uncore.metrics[1].misses == 1
    assert latency > 0


def test_private_bus_never_attributes_neighbor_waits():
    uncore = SharedUncore(2, shared_bus=False)
    for i in range(8):
        uncore.access(0, 0x10000 + i * 64, False, i)
        uncore.access(1, 0x90000 + i * 64, False, i)
    assert uncore.metrics[0].bus_wait_neighbor == 0
    assert uncore.metrics[1].bus_wait_neighbor == 0


# ----------------------------------------------------------------------
# Cached payload entry point


def test_run_scenario_payload_round_trips_through_cache():
    first = run_scenario_payload("noisy-neighbor", scale=SCALE)
    assert first["from_cache"] is False
    again = run_scenario_payload("noisy-neighbor", scale=SCALE)
    assert again["from_cache"] is True
    first.pop("from_cache")
    again.pop("from_cache")
    assert first == again


def test_run_scenario_payload_no_cache_bypasses_store():
    first = run_scenario_payload("symmetric", scale=SCALE, use_cache=False)
    again = run_scenario_payload("symmetric", scale=SCALE, use_cache=False)
    assert first["from_cache"] is False
    assert again["from_cache"] is False


def test_scenario_cache_key_covers_every_knob():
    base = get_scenario("noisy-neighbor")
    keys = {
        scenario_cache_key(base),
        scenario_cache_key(base.with_overrides(scale=0.2)),
        scenario_cache_key(base.with_overrides(cores=3)),
        scenario_cache_key(base.with_overrides(shared_bus=False)),
        scenario_cache_key(base.with_overrides(arbitration="fcfs")),
    }
    assert len(keys) == 5


def test_payload_shape_is_json_ready():
    import json

    payload = run_scenario_payload("latency-victim", scale=SCALE, cores=4)
    document = json.loads(json.dumps(payload))
    assert document["scenario"] == "latency-victim"
    assert len(document["cores"]) == 4
    idle = [c for c in document["cores"] if c.get("idle")]
    assert len(idle) == 1
    active = [c for c in document["cores"] if not c.get("idle")]
    for core in active:
        assert set(core["tma"]["level1"]) == {"retiring", "bad_speculation",
                                              "frontend", "backend"}
        attribution = core["attribution"]
        assert (attribution["self"] + attribution["neighbor_induced"]
                == attribution["mem_bound"])


# ----------------------------------------------------------------------
# Service integration


def wait_done(service, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while True:
        record = service.status(job_id)
        if record["state"] in ("done", "failed"):
            return record
        if time.time() > deadline:
            raise TimeoutError(f"job stuck in {record['state']}")
        time.sleep(0.02)


def make_service(**kwargs):
    from repro.service import TMAService

    kwargs.setdefault("workers", 2)
    kwargs.setdefault("executor", "thread")
    return TMAService(**kwargs)


def test_service_runs_multicore_job_end_to_end():
    service = make_service().start(resume=False)
    try:
        receipt = service.submit_multicore_payload(
            {"scenario": "noisy-neighbor", "scale": SCALE,
             "client": "test"})
        assert receipt.accepted
        record = wait_done(service, receipt.record.id)
        assert record["state"] == "done"
        assert record["job"]["type"] == "multicore"
        multicore = record["result"]["multicore"]
        assert multicore["scenario"] == "noisy-neighbor"
        assert len(multicore["cores"]) == 2
        # Repeat submission: served from the cached scenario payload
        # without burning a worker slot.
        repeat = service.submit_multicore_payload(
            {"scenario": "noisy-neighbor", "scale": SCALE})
        assert repeat.record.state == "done"
        assert repeat.record.result["from_cache"] is True
        assert service.metrics.counter("cache_hits") >= 1
    finally:
        service.drain(timeout=5.0)


def test_service_rejects_bad_multicore_payloads():
    from repro.service import JobValidationError

    service = make_service()
    with pytest.raises(JobValidationError):
        service.submit_multicore_payload({"scenario": "no-such"})
    with pytest.raises(JobValidationError):
        service.submit_multicore_payload({"scenario": "symmetric",
                                          "cores": 99})
    with pytest.raises(JobValidationError):
        service.submit_multicore_payload({"scenario": "symmetric",
                                          "bogus_field": 1})
    with pytest.raises(JobValidationError):
        service.submit_multicore_payload({})


def test_multicore_job_persists_across_drain():
    from repro.service import MulticoreJob, ResultStore

    store = ResultStore()
    job = MulticoreJob(scenario="symmetric", scale=SCALE, cores=2)
    store.persist_pending([job])
    assert store.load_pending() == [job]


def test_multicore_http_route():
    from repro.service import ServiceClient, serve_in_thread

    service = make_service().start(resume=False)
    server, _thread = serve_in_thread(service)
    try:
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}", timeout=60.0)
        receipt = client.submit_multicore("symmetric", scale=SCALE)
        record = client.wait(receipt["id"], timeout=120.0)
        assert record["state"] == "done"
        assert record["result"]["multicore"]["scenario"] == "symmetric"
    finally:
        server.shutdown()
        service.drain(timeout=5.0)


def test_multicore_jobs_dedup_in_flight():
    service = make_service(workers=1).start(resume=False)
    try:
        payload = {"scenario": "symmetric", "scale": SCALE}
        first = service.submit_multicore_payload(dict(payload))
        second = service.submit_multicore_payload(dict(payload))
        assert first.record.job_key == second.record.job_key
        record = wait_done(service, first.record.id)
        follower = wait_done(service, second.record.id)
        assert record["state"] == follower["state"] == "done"
    finally:
        service.drain(timeout=5.0)
