"""Parallel sweep engine: equivalence, crash recovery, degradation.

The engine's contract is that parallelism is *invisible* in the
results: a sharded sweep must merge to exactly what the serial
resilient runner produces, pair for pair, and every failure mode —
timed-out runs, dead workers, unpicklable grids, platforms without
process pools — must degrade to that same answer.
"""

import dataclasses
import pickle

import pytest

from repro.cores.configs import ROCKET, SMALL_BOOM
from repro.pmu.harness import PerfHarness
from repro.reliability.runner import ResilientRunner
from repro.tools.parallel import (ParallelSweepRunner, RunnerSpec,
                                  _CRASH_ENV)

WORKLOADS = ["dhrystone", "median", "qsort", "towers"]
CONFIGS = [ROCKET, SMALL_BOOM]
SCALE = 0.3


def make_runner(**kwargs):
    kwargs.setdefault("harness", PerfHarness(core="rocket"))
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("use_cache", False)
    return ResilientRunner(**kwargs)


def outcome_digest(outcome):
    measurement = outcome.measurement
    return (
        outcome.workload, outcome.config_name, outcome.status,
        outcome.attempts, outcome.error_class,
        None if measurement is None else (
            tuple(sorted(measurement.events.items())),
            measurement.cycles, measurement.instret, measurement.passes),
        None if outcome.tma is None else dataclasses.astuple(outcome.tma),
    )


@pytest.fixture(scope="module")
def serial_digests():
    report = ParallelSweepRunner(runner=make_runner(),
                                 max_workers=1).run_grid(WORKLOADS,
                                                         CONFIGS)
    assert report.engine == "serial"
    return [outcome_digest(o) for o in report.outcomes]


def test_parallel_merges_bit_identical_to_serial(serial_digests):
    report = ParallelSweepRunner(runner=make_runner(),
                                 max_workers=4).run_grid(WORKLOADS,
                                                         CONFIGS)
    assert report.engine == "parallel"
    assert report.workers == 4
    assert report.worker_crashes == 0
    assert [outcome_digest(o) for o in report.outcomes] == serial_digests


def test_parallel_repeats_deterministically():
    first = ParallelSweepRunner(runner=make_runner(), max_workers=3,
                                seed=7).run_grid(WORKLOADS, CONFIGS)
    second = ParallelSweepRunner(runner=make_runner(), max_workers=3,
                                 seed=7).run_grid(WORKLOADS, CONFIGS)
    assert [outcome_digest(o) for o in first.outcomes] \
        == [outcome_digest(o) for o in second.outcomes]


def test_worker_crash_recovers_serially(serial_digests, monkeypatch):
    monkeypatch.setenv(_CRASH_ENV, "qsort")
    report = ParallelSweepRunner(runner=make_runner(),
                                 max_workers=4).run_grid(WORKLOADS,
                                                         CONFIGS)
    assert report.engine == "parallel"
    assert report.worker_crashes >= 1
    assert report.recovered_indices
    # Recovery re-runs the dead workers' pairs in the parent; the merge
    # is still bit-identical to the serial sweep.
    assert [outcome_digest(o) for o in report.outcomes] == serial_digests


def test_timeout_kills_the_run_not_the_pool():
    """A pair that blows its cycle budget fails alone; the rest of the
    grid still completes in the same (unbroken) pool."""
    harness = PerfHarness(core="rocket")
    cycles = {
        workload: harness.measure(workload, ROCKET, scale=SCALE).cycles
        for workload in ("coremark", "vvadd")}
    budget = (min(cycles.values()) + max(cycles.values())) // 2
    victim = max(cycles, key=cycles.get)

    runner = make_runner(max_cycles=budget, max_attempts=1)
    report = ParallelSweepRunner(runner=runner, max_workers=2).run_grid(
        ["coremark", "vvadd"], [ROCKET])

    assert report.engine == "parallel"
    assert report.worker_crashes == 0
    by_name = {o.workload: o for o in report.outcomes}
    assert by_name[victim].status == "failed"
    assert by_name[victim].error_class == "RunTimeout"
    survivor = min(cycles, key=cycles.get)
    assert by_name[survivor].ok


def test_serial_fallback_when_pool_unavailable(serial_digests):
    def no_pool(workers):
        raise OSError("fork unavailable")

    report = ParallelSweepRunner(runner=make_runner(), max_workers=4,
                                 executor_factory=no_pool).run_grid(
                                     WORKLOADS, CONFIGS)
    assert report.engine == "serial-fallback"
    assert "fork unavailable" in report.fallback_reason
    assert [outcome_digest(o) for o in report.outcomes] == serial_digests


class UnpicklableRocketConfig(ROCKET.__class__):
    """Functionally ROCKET, but refuses to cross a process boundary."""

    def __reduce__(self):
        raise pickle.PicklingError("config cannot be pickled")


def test_serial_fallback_on_unpicklable_grid():
    config = UnpicklableRocketConfig()
    report = ParallelSweepRunner(runner=make_runner(),
                                 max_workers=4).run_grid(
                                     ["dhrystone", "median"], [config])
    assert report.engine == "serial-fallback"
    assert "unpicklable" in report.fallback_reason
    assert all(o.ok for o in report.outcomes)


def test_runner_spec_round_trip():
    runner = make_runner(scale=0.7, max_attempts=2, max_cycles=123_456,
                         event_names=["slots_issued", "slots_retired"])
    spec = RunnerSpec.from_runner(runner)
    rebuilt = pickle.loads(pickle.dumps(spec)).build()
    assert rebuilt.harness.core == "rocket"
    assert rebuilt.scale == 0.7
    assert rebuilt.max_attempts == 2
    assert rebuilt.max_cycles == 123_456
    assert rebuilt.event_names == ["slots_issued", "slots_retired"]
    assert rebuilt.use_cache is False


def test_max_workers_validation():
    with pytest.raises(ValueError):
        ParallelSweepRunner(max_workers=0)
