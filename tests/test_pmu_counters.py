"""Unit and property tests for the three counter architectures (Fig. 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmu import (AddWiresCounterBank, ClassicOrCounter,
                       DistributedCounterBank, ScalarCounterBank,
                       make_counter_bank)

EVENTS = ["fetch_bubbles", "uops_issued"]


def feed(bank, stream):
    for cycle, signals in enumerate(stream):
        bank.on_cycle(cycle, signals)


def test_scalar_counts_each_lane_separately():
    bank = ScalarCounterBank("boom", ["fetch_bubbles"])
    feed(bank, [{"fetch_bubbles": 0b101}, {"fetch_bubbles": 0b001}])
    assert bank.read_lane("fetch_bubbles", 0) == 2
    assert bank.read_lane("fetch_bubbles", 1) == 0
    assert bank.read_lane("fetch_bubbles", 2) == 1
    assert bank.read_event("fetch_bubbles") == 3


def test_scalar_counter_cost_scales_with_sources():
    bank = ScalarCounterBank("boom", EVENTS)
    feed(bank, [{"fetch_bubbles": 0b111, "uops_issued": 0b11111}])
    assert bank.counters_used() == 3 + 5


def test_adders_match_scalar_totals_exactly():
    stream = [{"fetch_bubbles": 0b110, "uops_issued": 0b10101},
              {"fetch_bubbles": 0b000, "uops_issued": 0b00111},
              {"fetch_bubbles": 0b111, "uops_issued": 0b00000}]
    scalar = ScalarCounterBank("boom", EVENTS)
    adders = AddWiresCounterBank("boom", EVENTS)
    feed(scalar, stream)
    feed(adders, stream)
    for event in EVENTS:
        assert adders.read_event(event) == scalar.read_event(event)
    assert adders.counters_used() == 2  # one per event


def test_adders_increment_width_and_chain_length():
    adders = AddWiresCounterBank("boom", ["uops_issued"])
    feed(adders, [{"uops_issued": 0b11111}])
    assert adders.increment_width("uops_issued") == 3  # counts 0..5
    assert adders.adder_chain_length("uops_issued") == 4


def test_distributed_needs_post_processing():
    bank = DistributedCounterBank("boom", ["fetch_bubbles"],
                                  sources={"fetch_bubbles": 4})
    # 4 sources -> 2-bit locals -> software value quantized to 4s.
    stream = [{"fetch_bubbles": 0b1111}] * 16
    feed(bank, stream)
    bank.drain()
    exact = bank.exact_event("fetch_bubbles")
    software = bank.read_event("fetch_bubbles")
    assert exact == 64
    assert software % 4 == 0
    assert software <= exact


def test_distributed_undercount_bounded_after_drain():
    """§IV-B: undercount <= sources * (2^N - 1) once flags drain."""
    bank = DistributedCounterBank("boom", ["fetch_bubbles"],
                                  sources={"fetch_bubbles": 4})
    feed(bank, [{"fetch_bubbles": 0b1011}] * 929)
    bank.drain()
    assert bank.undercount("fetch_bubbles") \
        <= bank.undercount_bound("fetch_bubbles")
    # The paper's example: error stays ~1.3% for ~929 events.
    exact = bank.exact_event("fetch_bubbles")
    error = bank.undercount("fetch_bubbles") / exact
    assert error <= 12 / (929 + 12) + 0.02


def test_distributed_single_source_still_counts():
    bank = DistributedCounterBank("boom", ["recovering"])
    feed(bank, [{"recovering": 1}] * 10)
    bank.drain()
    assert bank.exact_event("recovering") == 10


def test_distributed_zero_activity_reads_zero():
    bank = DistributedCounterBank("boom", ["recovering"])
    feed(bank, [{}] * 5)
    assert bank.read_event("recovering") == 0
    assert bank.undercount("recovering") == 0


def test_classic_or_counter_undercounts_concurrent_lanes():
    """The §II-A motivation: two events in one cycle count once."""
    classic = ClassicOrCounter("boom", ["uops_issued"])
    adders = AddWiresCounterBank("boom", ["uops_issued"])
    stream = [{"uops_issued": 0b111}] * 10
    feed(classic, stream)
    feed(adders, stream)
    assert classic.read() == 10
    assert adders.read_event("uops_issued") == 30


def test_classic_or_counter_rejects_cross_set_events():
    with pytest.raises(ValueError):
        ClassicOrCounter("boom", ["cycles", "icache_miss"])


def test_factory_dispatch():
    assert isinstance(make_counter_bank("scalar", "boom", EVENTS),
                      ScalarCounterBank)
    assert isinstance(make_counter_bank("adders", "boom", EVENTS),
                      AddWiresCounterBank)
    assert isinstance(make_counter_bank("distributed", "boom", EVENTS),
                      DistributedCounterBank)
    with pytest.raises(ValueError):
        make_counter_bank("quantum", "boom", EVENTS)


def test_unknown_event_rejected_at_construction():
    with pytest.raises(ValueError):
        ScalarCounterBank("boom", ["bogus"])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=300))
def test_property_adders_equal_popcount_sum(masks):
    adders = AddWiresCounterBank("boom", ["uops_issued"])
    feed(adders, [{"uops_issued": m} for m in masks])
    assert adders.read_event("uops_issued") \
        == sum(m.bit_count() for m in masks)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                max_size=400))
def test_property_distributed_exact_count_is_lossless(masks):
    """principal*2^N + pending flags + locals == true event count."""
    bank = DistributedCounterBank("boom", ["fetch_bubbles"],
                                  sources={"fetch_bubbles": 4})
    feed(bank, [{"fetch_bubbles": m} for m in masks])
    truth = sum(m.bit_count() for m in masks)
    assert bank.exact_event("fetch_bubbles") == truth


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                max_size=400))
def test_property_distributed_software_value_never_overcounts(masks):
    bank = DistributedCounterBank("boom", ["fetch_bubbles"],
                                  sources={"fetch_bubbles": 4})
    feed(bank, [{"fetch_bubbles": m} for m in masks])
    bank.drain()
    truth = sum(m.bit_count() for m in masks)
    assert bank.read_event("fetch_bubbles") <= truth
    assert truth - bank.read_event("fetch_bubbles") \
        <= bank.undercount_bound("fetch_bubbles")


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                max_size=200))
def test_property_scalar_lane_sums_match_total(masks):
    bank = ScalarCounterBank("boom", ["fetch_bubbles"])
    feed(bank, [{"fetch_bubbles": m} for m in masks])
    total = sum(bank.read_lane("fetch_bubbles", lane) for lane in range(3))
    assert total == bank.read_event("fetch_bubbles")
