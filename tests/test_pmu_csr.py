"""Unit tests for the CSR-file model."""

import pytest

from repro.isa.csrs import (MCOUNTINHIBIT, MCYCLE, MINSTRET,
                            mhpmcounter_addr, mhpmevent_addr)
from repro.pmu import CsrFile, encode_selector


def programmed(core="boom", mode="adders", event="fetch_bubbles",
               index=3) -> CsrFile:
    csr = CsrFile(core=core, increment_mode=mode)
    csr.write(mhpmevent_addr(index), encode_selector([event], core))
    csr.write(MCOUNTINHIBIT, 0)
    return csr


def test_counters_start_inhibited():
    csr = CsrFile()
    csr.write(mhpmevent_addr(3),
              encode_selector(["fetch_bubbles"], "boom"))
    csr.on_cycle(0, {"fetch_bubbles": 0b111})
    assert csr.read(mhpmcounter_addr(3)) == 0
    assert csr.read(MCYCLE) == 0


def test_clearing_inhibit_starts_counting():
    csr = programmed()
    csr.on_cycle(0, {"fetch_bubbles": 0b111})
    assert csr.read(mhpmcounter_addr(3)) == 3  # adders mode popcounts
    assert csr.read(MCYCLE) == 1


def test_classic_mode_increments_at_most_one():
    csr = programmed(mode="classic")
    csr.on_cycle(0, {"fetch_bubbles": 0b111})
    csr.on_cycle(1, {"fetch_bubbles": 0b001})
    assert csr.read(mhpmcounter_addr(3)) == 2


def test_distributed_mode_needs_correction():
    csr = programmed(mode="distributed")
    for cycle in range(32):
        csr.on_cycle(cycle, {"fetch_bubbles": 0b111})
    csr.drain()
    raw = csr.read(mhpmcounter_addr(3))
    corrected = csr.counter_for(3).corrected_value()
    assert corrected > raw            # x 2^N post-processing applied
    assert corrected <= 96            # never overcounts the 96 events
    assert corrected >= 96 - csr.counter_for(3)._distributed.sources * \
        (csr.counter_for(3)._distributed.wrap - 1) - 1


def test_minstret_counts_retired():
    csr = programmed()
    csr.on_cycle(0, {"instr_retired": 0b11})
    csr.on_cycle(1, {"instr_retired": 0b1})
    assert csr.read(MINSTRET) == 3


def test_selector_readback_and_reprogram_resets():
    csr = programmed()
    selector = encode_selector(["fetch_bubbles"], "boom")
    assert csr.read(mhpmevent_addr(3)) == selector
    csr.on_cycle(0, {"fetch_bubbles": 1})
    csr.write(mhpmevent_addr(3), encode_selector(["recovering"], "boom"))
    assert csr.read(mhpmcounter_addr(3)) == 0


def test_counter_value_write():
    csr = programmed()
    csr.write(mhpmcounter_addr(3), 999)
    assert csr.read(mhpmcounter_addr(3)) == 999


def test_unknown_csr_ignored_and_reads_zero():
    csr = CsrFile()
    csr.write(0x7C0, 5)
    assert csr.read(0x7C0) == 0


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        CsrFile(increment_mode="magic")


def test_multiple_events_one_counter_adders():
    csr = CsrFile(core="boom", increment_mode="adders")
    selector = encode_selector(["icache_miss", "dcache_miss"], "boom")
    csr.write(mhpmevent_addr(4), selector)
    csr.write(MCOUNTINHIBIT, 0)
    csr.on_cycle(0, {"icache_miss": 1, "dcache_miss": 1})
    assert csr.read(mhpmcounter_addr(4)) == 2  # multi-bit increment


def test_cross_set_selector_rejected_by_hardware():
    csr = CsrFile(core="boom")
    bad = (int(0) | (1 << 8)) | (1 << (8 + 1))  # cycles + instr_retired ok
    # construct a genuinely cross-set selector by hand: set id 0 with a
    # bit that only exists in set 2 simply selects nothing; instead
    # verify the encoder is the guard:
    with pytest.raises(ValueError):
        encode_selector(["cycles", "icache_miss"], "boom")


def test_corrected_values_listing():
    csr = programmed()
    csr.on_cycle(0, {"fetch_bubbles": 0b11})
    values = csr.corrected_values()
    assert values == {3: 2}


def test_inhibit_bit_granularity():
    csr = CsrFile(core="boom", increment_mode="adders")
    csr.write(mhpmevent_addr(3), encode_selector(["recovering"], "boom"))
    csr.write(mhpmevent_addr(4), encode_selector(["icache_miss"], "boom"))
    # inhibit only counter 4
    csr.write(MCOUNTINHIBIT, 1 << 4)
    csr.on_cycle(0, {"recovering": 1, "icache_miss": 1})
    assert csr.read(mhpmcounter_addr(3)) == 1
    assert csr.read(mhpmcounter_addr(4)) == 0
