"""Unit tests for the event registry (Table I) and selector encoding."""

import pytest

from repro.pmu import (BOOM_EVENTS, EventSet, ROCKET_EVENTS, decode_selector,
                       encode_selector, events_for_core,
                       new_events_for_core)
from repro.pmu.events import TmaLevel


def test_icicle_adds_three_rocket_events():
    new = new_events_for_core("rocket")
    assert sorted(e.name for e in new) == [
        "fetch_bubbles", "instr_issued", "recovering"]


def test_icicle_adds_seven_boom_events():
    new = new_events_for_core("boom")
    assert sorted(e.name for e in new) == [
        "dcache_blocked", "fence_retired", "fetch_bubbles",
        "icache_blocked", "recovering", "uops_issued", "uops_retired"]


def test_new_events_live_in_the_tma_set():
    for core in ("rocket", "boom"):
        for event in new_events_for_core(core):
            assert event.event_set == EventSet.TMA


def test_boom_lower_level_events_marked():
    assert BOOM_EVENTS["icache_blocked"].tma_level == TmaLevel.LOWER
    assert BOOM_EVENTS["dcache_blocked"].tma_level == TmaLevel.LOWER
    assert BOOM_EVENTS["uops_issued"].tma_level == TmaLevel.TOP


def test_per_lane_flags():
    assert BOOM_EVENTS["uops_issued"].per_lane
    assert BOOM_EVENTS["fetch_bubbles"].per_lane
    assert not BOOM_EVENTS["recovering"].per_lane
    assert not ROCKET_EVENTS["fetch_bubbles"].per_lane  # single-issue


def test_rocket_has_legacy_blocked_events_in_microarch_set():
    # "Rocket already includes I$-blocked and D$-blocked counters"
    assert ROCKET_EVENTS["icache_blocked"].event_set == EventSet.MICROARCH
    assert not ROCKET_EVENTS["icache_blocked"].is_new
    assert BOOM_EVENTS["icache_blocked"].is_new  # new on BOOM


def test_bits_unique_within_each_set():
    for registry in (ROCKET_EVENTS, BOOM_EVENTS):
        seen = set()
        for event in registry.values():
            key = (event.event_set, event.bit)
            assert key not in seen
            seen.add(key)


def test_selector_roundtrip_single_event():
    selector = encode_selector(["fetch_bubbles"], "boom")
    event_set, events = decode_selector(selector, "boom")
    assert event_set == EventSet.TMA
    assert [e.name for e in events] == ["fetch_bubbles"]


def test_selector_roundtrip_multiple_events_same_set():
    names = ["icache_miss", "dcache_miss", "dtlb_miss"]
    selector = encode_selector(names, "rocket")
    _, events = decode_selector(selector, "rocket")
    assert sorted(e.name for e in events) == sorted(names)


def test_selector_rejects_cross_set_mix():
    """The §II-A hardware constraint: one event set per counter."""
    with pytest.raises(ValueError):
        encode_selector(["cycles", "icache_miss"], "rocket")


def test_selector_rejects_unknown_event():
    with pytest.raises(ValueError):
        encode_selector(["nonsense"], "boom")
    with pytest.raises(ValueError):
        encode_selector([], "boom")


def test_selector_low_byte_is_event_set_id():
    selector = encode_selector(["recovering"], "boom")
    assert selector & 0xFF == int(EventSet.TMA)
    assert selector >> 8 != 0


def test_events_for_core_rejects_unknown():
    with pytest.raises(ValueError):
        events_for_core("z80")


def test_event_selector_property():
    event = BOOM_EVENTS["uops_issued"]
    assert event.selector == encode_selector(["uops_issued"], "boom")
