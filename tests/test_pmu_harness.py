"""Unit + integration tests for the perf software harness (§IV-D)."""

import pytest

from repro.cores import LARGE_BOOM, ROCKET
from repro.isa import AssemblerError, assemble, execute
from repro.pmu import CsrFile, PerfHarness
from repro.pmu.harness import NUM_PROGRAMMABLE, CounterAssignment


def test_plan_one_counter_per_event():
    harness = PerfHarness(core="boom")
    passes = harness.plan(["fetch_bubbles", "recovering"])
    assert len(passes) == 1
    assert [names for _, names in passes[0].slots] == [
        ["fetch_bubbles"], ["recovering"]]


def test_plan_multiplexes_beyond_29_counters():
    harness = PerfHarness(core="boom")
    # 30 requests > 29 programmable counters -> two passes
    events = ["cycles"] * 30
    passes = harness.plan(events)
    assert len(passes) == 2
    assert len(passes[0].slots) == NUM_PROGRAMMABLE
    assert len(passes[1].slots) == 1


def test_plan_rejects_unknown_event():
    with pytest.raises(ValueError):
        PerfHarness(core="boom").plan(["not_an_event"])


def test_setup_performs_four_steps():
    harness = PerfHarness(core="boom")
    assignment = harness.plan(["fetch_bubbles"])[0]
    csr = CsrFile(core="boom")
    harness.setup(csr, assignment)
    assert csr.enabled                          # step 1
    index = assignment.slots[0][0]
    assert csr.counter_for(index).selector != 0  # steps 2+3
    assert csr.mcountinhibit == 0               # step 4


def test_boot_assembly_mentions_every_counter():
    harness = PerfHarness(core="boom", mode="linux")
    assignment = harness.plan(["fetch_bubbles", "uops_issued"])[0]
    text = harness.boot_assembly(assignment)
    assert "mhpmevent3" in text
    assert "mhpmevent4" in text
    assert "mcountinhibit" in text
    assert "mcounteren" in text


def test_boot_sequence_assembles_and_programs_csr_file():
    """The linux path goes through the real assembler + executor."""
    harness = PerfHarness(core="boom", mode="linux")
    assignment = harness.plan(["fetch_bubbles"])[0]
    csr = CsrFile(core="boom")
    writes = harness.apply_boot_sequence(csr, assignment)
    assert writes >= 3
    index = assignment.slots[0][0]
    assert csr.counter_for(index).events[0].name == "fetch_bubbles"
    assert csr.mcountinhibit == 0


def test_firemarshal_command_shape():
    harness = PerfHarness(core="boom", increment_mode="distributed")
    command = harness.firemarshal_command("coremark", ["recovering"])
    assert "marshal-pmu build" in command
    assert "--events recovering" in command
    assert "--counter-arch distributed" in command
    assert "coremark.json" in command


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        PerfHarness(mode="windows")


def test_invalid_increment_mode_rejected():
    with pytest.raises(ValueError):
        PerfHarness(core="boom", increment_mode="quantum")


def test_measure_empty_event_names_rejected():
    harness = PerfHarness(core="boom")
    with pytest.raises(ValueError):
        harness.measure("median", LARGE_BOOM, event_names=[], scale=0.3)


def test_boot_sequence_rejects_out_of_range_counter_index():
    """mhpmevent35 names no architected CSR, so assembly must fail."""
    harness = PerfHarness(core="boom", mode="linux")
    bogus = CounterAssignment(slots=[(35, ["fetch_bubbles"])])
    with pytest.raises(AssemblerError):
        harness.apply_boot_sequence(CsrFile(core="boom"), bogus)


def test_boot_sequence_numeric_csr_assembles_but_warl_ignored():
    """A numeric CSR token assembles fine; an unmapped address is WARL
    (write-any-read-legal) in the CSR file, so no counter gets armed."""
    source = "\n".join([
        ".text",
        "_start:",
        "    li t0, 1",
        "    csrw 0x350, t0",
        "    li a7, 93",
        "    ecall",
    ]) + "\n"
    trace = execute(assemble(source, name="warl-probe"))
    csr = CsrFile(core="boom")
    writes = 0
    for inst in trace:
        if inst.csr >= 0 and inst.csr_write is not None:
            csr.write(inst.csr, inst.csr_write)
            writes += 1
    assert writes == 1
    assert all(counter.selector == 0
               for counter in csr.counters.values())


def test_measure_end_to_end_boom():
    harness = PerfHarness(core="boom", increment_mode="adders")
    measurement = harness.measure(
        "dhrystone", LARGE_BOOM,
        event_names=["fetch_bubbles", "recovering", "uops_issued",
                     "uops_retired"], scale=0.3)
    assert measurement.passes == 1
    assert measurement.cycles > 0
    assert measurement.events["uops_retired"] > 0
    assert measurement.events["uops_issued"] \
        >= measurement.events["uops_retired"]
    assert measurement.ipc > 0


def test_measure_matches_core_event_totals():
    """PMU-read values equal the core's own accumulation (adders)."""
    harness = PerfHarness(core="boom", increment_mode="adders")
    measurement = harness.measure(
        "median", LARGE_BOOM,
        event_names=["uops_retired", "fetch_bubbles"], scale=0.3)
    result = measurement.result
    assert measurement.events["uops_retired"] \
        == result.event("uops_retired")
    assert measurement.events["fetch_bubbles"] \
        == result.event("fetch_bubbles")


def test_measure_linux_mode_agrees_with_baremetal():
    events = ["uops_retired", "recovering"]
    bare = PerfHarness(core="boom", mode="baremetal").measure(
        "median", LARGE_BOOM, event_names=events, scale=0.3)
    linux = PerfHarness(core="boom", mode="linux").measure(
        "median", LARGE_BOOM, event_names=events, scale=0.3)
    assert bare.events == linux.events


def test_multiplexed_passes_agree_with_single_pass():
    """Deterministic traces make multiplexing exact: a 2-pass schedule
    must read the same totals as a single-pass one."""
    harness = PerfHarness(core="boom")
    multi = harness.measure(
        "median", LARGE_BOOM,
        event_names=["cycles"] * 30 + ["uops_retired"], scale=0.3)
    assert multi.passes == 2
    single = harness.measure(
        "median", LARGE_BOOM,
        event_names=["cycles", "uops_retired"], scale=0.3)
    assert multi.events == single.events
    assert multi.cycles == single.cycles


def test_measure_rocket():
    harness = PerfHarness(core="rocket")
    measurement = harness.measure(
        "median", ROCKET,
        event_names=["instr_retired", "fetch_bubbles", "recovering"],
        scale=0.3)
    assert measurement.events["instr_retired"] > 0
