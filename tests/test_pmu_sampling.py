"""Unit tests for time-multiplexed counter sampling."""

import pytest

from repro.cores import LARGE_BOOM
from repro.pmu import MultiplexedCsrFile, measure_sampled


def test_constructor_validation():
    with pytest.raises(ValueError):
        MultiplexedCsrFile("boom", [], interval=10)
    with pytest.raises(ValueError):
        MultiplexedCsrFile("boom", [["cycles"]], interval=0)
    with pytest.raises(ValueError):
        MultiplexedCsrFile("boom", [["not_real"]])


def test_single_group_is_exact():
    mux = MultiplexedCsrFile("boom", [["uops_retired"]], interval=10)
    for cycle in range(100):
        mux.on_cycle(cycle, {"uops_retired": 0b11})
    assert mux.raw_count("uops_retired") == 200
    assert mux.estimated_count("uops_retired") == pytest.approx(200)
    assert mux.coverage("uops_retired") == pytest.approx(1.0)


def test_rotation_splits_time_evenly():
    groups = [["uops_retired"], ["fetch_bubbles"]]
    mux = MultiplexedCsrFile("boom", groups, interval=10)
    for cycle in range(200):
        mux.on_cycle(cycle, {"uops_retired": 1, "fetch_bubbles": 1})
    assert mux.coverage("uops_retired") == pytest.approx(0.5)
    assert mux.coverage("fetch_bubbles") == pytest.approx(0.5)
    # Uniform signals extrapolate exactly.
    assert mux.estimated_count("uops_retired") == pytest.approx(200)
    assert mux.estimated_count("fetch_bubbles") == pytest.approx(200)


def test_bursty_signal_can_be_missed():
    """A burst entirely inside the other group's slice is invisible."""
    groups = [["uops_retired"], ["fetch_bubbles"]]
    mux = MultiplexedCsrFile("boom", groups, interval=10)
    for cycle in range(40):
        signals = {}
        if 2 <= cycle < 8:     # burst in group 0's first slice
            signals["fetch_bubbles"] = 0b111
        mux.on_cycle(cycle, signals)
    assert mux.raw_count("fetch_bubbles") == 0
    assert mux.estimated_count("fetch_bubbles") == 0.0


def test_classic_mode_counts_once_per_cycle():
    mux = MultiplexedCsrFile("boom", [["uops_issued"]], interval=10,
                             increment_mode="classic")
    for cycle in range(10):
        mux.on_cycle(cycle, {"uops_issued": 0b11111})
    assert mux.raw_count("uops_issued") == 10


def test_unknown_event_lookup_raises():
    mux = MultiplexedCsrFile("boom", [["cycles"]])
    with pytest.raises(KeyError):
        mux.estimated_count("uops_issued")
    with pytest.raises(KeyError):
        mux.coverage("uops_issued")


def test_measure_sampled_end_to_end():
    comparisons = measure_sampled(
        "vvadd", LARGE_BOOM,
        [["uops_issued", "uops_retired"], ["fetch_bubbles"]],
        interval=100, scale=0.2)
    by_event = {c.event: c for c in comparisons}
    assert set(by_event) == {"uops_issued", "uops_retired",
                             "fetch_bubbles"}
    retired = by_event["uops_retired"]
    assert retired.exact > 0
    assert abs(retired.relative_error) < 0.25
    assert 0.3 < retired.coverage < 0.7
