"""Unit + integration tests for the stride data prefetcher."""

from dataclasses import replace

import pytest

from repro.cores import BoomCore, LARGE_BOOM
from repro.uarch import MemorySystem, StridePrefetcher
from repro.uarch.prefetch import CONFIDENCE_THRESHOLD
from repro.workloads import build_trace


def test_constructor_validation():
    with pytest.raises(ValueError):
        StridePrefetcher(entries=0)
    with pytest.raises(ValueError):
        StridePrefetcher(degree=0)
    with pytest.raises(ValueError):
        StridePrefetcher(distance=-1)


def test_training_requires_repeated_stride():
    prefetcher = StridePrefetcher(degree=1, distance=1)
    assert prefetcher.train(0x100, 0x1000) == []        # first touch
    assert prefetcher.train(0x100, 0x1040) == []        # stride learned
    assert prefetcher.train(0x100, 0x1080) == []        # confidence 1
    targets = prefetcher.train(0x100, 0x10C0)           # confidence 2
    assert targets == [0x10C0 + 0x40 * 1]   # distance=1, degree=1


def test_stride_change_resets_confidence():
    prefetcher = StridePrefetcher(degree=1, distance=1)
    for addr in (0x0, 0x40, 0x80, 0xC0):
        prefetcher.train(0x10, addr)
    assert prefetcher.train(0x10, 0x1000) == []  # broken stride
    assert prefetcher.train(0x10, 0x1040) == []
    assert prefetcher.train(0x10, 0x1080) == []
    assert prefetcher.train(0x10, 0x10C0) != []  # re-trained


def test_zero_stride_never_prefetches():
    prefetcher = StridePrefetcher()
    for _ in range(10):
        assert prefetcher.train(0x20, 0x5000) == []


def test_degree_and_distance():
    prefetcher = StridePrefetcher(degree=3, distance=4)
    addr = 0x0
    targets = []
    for step in range(CONFIDENCE_THRESHOLD + 2):
        addr = step * 0x40
        targets = prefetcher.train(0x30, addr)
    assert targets == [addr + 0x40 * (4 + k) for k in range(3)]


def test_table_lru_eviction():
    prefetcher = StridePrefetcher(entries=2)
    prefetcher.train(0x1, 0x100)
    prefetcher.train(0x2, 0x200)
    prefetcher.train(0x3, 0x300)   # evicts pc 0x1
    assert 0x1 not in prefetcher._table
    assert 0x2 in prefetcher._table


def test_issue_respects_mshrs_and_residency():
    memory = MemorySystem.build()
    cache = memory.nonblocking_l1d(mshrs=1)
    cache.access(0x9000, cycle=0)          # occupies the only MSHR
    prefetcher = StridePrefetcher()
    prefetcher.issue(cache, [0x9000, 0xA000], cycle=1)
    # 0x9000's block was installed by the demand access -> useless;
    # 0xA000 finds the MSHR file full -> dropped.
    assert prefetcher.stats.useless == 1
    assert prefetcher.stats.dropped_no_mshr == 1
    assert prefetcher.stats.issued == 0


def test_prefetcher_speeds_up_streaming_kernel():
    trace = build_trace("vvadd", scale=0.5)
    base = BoomCore(LARGE_BOOM).run(trace)
    pf_config = replace(LARGE_BOOM, name="LargeBOOM-dpf",
                        dcache_prefetch=True)
    core = BoomCore(pf_config)
    result = core.run(trace)
    assert result.cycles < base.cycles
    assert core.dprefetcher.stats.issued > 0


def test_prefetcher_harmless_on_pointer_chase():
    """Random strides never train: the chase must not get slower."""
    trace = build_trace("505.mcf_r", scale=0.3)
    base = BoomCore(LARGE_BOOM).run(trace)
    pf_config = replace(LARGE_BOOM, name="LargeBOOM-dpf",
                        dcache_prefetch=True)
    result = BoomCore(pf_config).run(trace)
    assert result.cycles <= base.cycles * 1.02
