"""Tests for the reliability layer: faults, invariants, runner, campaign."""

import pytest

from repro.cores import LARGE_BOOM, ROCKET
from repro.cores.boom import BoomCore
from repro.cores.rocket import RocketCore
from repro.pmu import PerfHarness
from repro.reliability import (BITFLIP_COUNTER, CORRUPT_CACHE,
                               CacheIntegrityError, CounterCorruption,
                               DROP_INCREMENTS, FAULT_CLASSES,
                               FaultInjector, FaultPlan, FaultSpec,
                               ReliabilityError, ResilientRunner,
                               RunTimeout, STALL_CORE,
                               SlotConservationViolation, TRUNCATE_TRACE,
                               TmaInvariantChecker, run_campaign)
from repro.tools import cache
from repro.workloads import build_trace


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


EVENTS = ["cycles", "uops_issued", "uops_retired", "fetch_bubbles"]


def measure(**kwargs):
    harness = PerfHarness(core="boom",
                          fault_injector=kwargs.pop("fault_injector", None))
    return harness.measure("median", LARGE_BOOM, event_names=EVENTS,
                           scale=0.2, **kwargs)


# ---------------------------------------------------------------------------
# fault plan determinism
# ---------------------------------------------------------------------------

def test_fault_plan_is_deterministic():
    a = FaultPlan(seed=3, count=7, counter_event_names=EVENTS).specs()
    b = FaultPlan(seed=3, count=7, counter_event_names=EVENTS).specs()
    assert a == b


def test_fault_plan_covers_every_class():
    specs = FaultPlan(seed=0, count=5).specs()
    assert {spec.kind for spec in specs} == set(FAULT_CLASSES)


def test_fault_plan_rejects_unknown_class():
    with pytest.raises(ValueError):
        FaultPlan(classes=("gamma-ray",))


# ---------------------------------------------------------------------------
# clean runs satisfy every invariant
# ---------------------------------------------------------------------------

def test_clean_measurement_has_no_violations():
    checker = TmaInvariantChecker()
    m = measure()
    assert checker.violations(m) == []
    checker.check_measurement(m)


def test_clean_rocket_measurement_has_no_violations():
    harness = PerfHarness(core="rocket")
    m = harness.measure("vvadd", ROCKET,
                        event_names=["cycles", "instr_issued",
                                     "instr_retired", "fetch_bubbles"],
                        scale=0.2)
    TmaInvariantChecker().check_measurement(m)


def test_monotonicity_clean_and_violated():
    checker = TmaInvariantChecker()
    harness = PerfHarness(core="boom")
    small = harness.measure("vvadd", LARGE_BOOM, event_names=EVENTS,
                            scale=0.15)
    large = harness.measure("vvadd", LARGE_BOOM, event_names=EVENTS,
                            scale=0.3)
    checker.check_monotonic([small, large])
    with pytest.raises(CounterCorruption):
        checker.check_monotonic([large, small])


def test_multiplex_agreement_clean():
    checker = TmaInvariantChecker()
    harness = PerfHarness(core="boom")
    combined = checker.check_multiplex_agreement(
        harness, "vvadd", LARGE_BOOM, ["uops_retired", "fetch_bubbles"],
        scale=0.2)
    assert combined.events["uops_retired"] > 0


# ---------------------------------------------------------------------------
# each fault class is detected by its error subclass
# ---------------------------------------------------------------------------

def test_dropped_increments_detected_as_counter_corruption():
    spec = FaultSpec(kind=DROP_INCREMENTS, seed=1, event="uops_retired",
                     drop_rate=0.5)
    m = measure(fault_injector=FaultInjector(spec))
    with pytest.raises(CounterCorruption) as excinfo:
        TmaInvariantChecker().check_measurement(m)
    assert excinfo.value.invariant == "pmu-vs-core"


def test_counter_bitflip_detected_as_counter_corruption():
    spec = FaultSpec(kind=BITFLIP_COUNTER, seed=1, counter_index=3,
                     bit=40)
    m = measure(fault_injector=FaultInjector(spec))
    with pytest.raises(CounterCorruption):
        TmaInvariantChecker().check_measurement(m)


def test_truncated_trace_detected_against_reference():
    checker = TmaInvariantChecker()
    reference = measure()
    spec = FaultSpec(kind=TRUNCATE_TRACE, seed=1, keep_fraction=0.5)
    m = measure(fault_injector=FaultInjector(spec))
    checker.check_measurement(m)  # internally consistent...
    with pytest.raises(CounterCorruption) as excinfo:
        checker.check_matches_reference(m, reference)  # ...but refuted
    assert excinfo.value.invariant == "reference-divergence"


def test_stalled_core_detected_as_run_timeout():
    spec = FaultSpec(kind=STALL_CORE, seed=1, stall_at=32)
    with pytest.raises(RunTimeout):
        measure(fault_injector=FaultInjector(spec), max_cycles=20_000)


def test_corrupted_cache_detected_and_quarantined(isolated_cache):
    reference = measure()
    key = cache.cache_key("median", 0.2, LARGE_BOOM)
    cache.store(key, reference.result)
    assert cache.verify_entry(key)
    injector = FaultInjector(FaultSpec(kind=CORRUPT_CACHE, seed=1))
    injector.corrupt_cache_file(cache.entry_path(key))
    with pytest.raises(CacheIntegrityError):
        cache.verify_entry(key)
    assert cache.load(key) is None  # lenient path: corrupt == miss
    assert cache.quarantine(key)
    assert not cache.entry_path(key).exists()


def test_slot_conservation_violation_on_inflated_event():
    m = measure()
    m.events["fetch_bubbles"] = 10 * LARGE_BOOM.commit_width * m.cycles
    m.result = None  # no cross-check: the slot laws must catch it alone
    with pytest.raises(SlotConservationViolation):
        TmaInvariantChecker().check_measurement(m)


# ---------------------------------------------------------------------------
# core watchdogs
# ---------------------------------------------------------------------------

def test_boom_run_timeout_on_tiny_budget():
    trace = build_trace("vvadd", scale=0.2)
    with pytest.raises(RunTimeout):
        BoomCore(LARGE_BOOM).run(trace, max_cycles=10)


def test_rocket_run_timeout_on_tiny_budget():
    trace = build_trace("vvadd", scale=0.2)
    with pytest.raises(RunTimeout):
        RocketCore(ROCKET).run(trace, max_cycles=10)


def test_budget_off_by_default_runs_to_completion():
    trace = build_trace("vvadd", scale=0.2)
    result = BoomCore(LARGE_BOOM).run(trace)
    assert result.instret == len(trace)


# ---------------------------------------------------------------------------
# resilient runner
# ---------------------------------------------------------------------------

def test_runner_sweep_reports_partial_results(isolated_cache):
    # A stalled core makes one pair fail every attempt; the other pair
    # (and the sweep) must still complete.
    injector = FaultInjector(FaultSpec(kind=STALL_CORE, seed=1,
                                       stall_at=32))
    harness = PerfHarness(core="boom", fault_injector=injector)
    runner = ResilientRunner(harness=harness, event_names=EVENTS,
                             scale=0.2, max_attempts=2, max_cycles=20_000)
    report = runner.run_grid(["median"], [LARGE_BOOM])
    assert len(report.failed) == 1
    outcome = report.failed[0]
    assert outcome.error_class == "RunTimeout"
    assert outcome.attempts == 2

    clean = ResilientRunner(harness=PerfHarness(core="boom"),
                            event_names=EVENTS, scale=0.2,
                            max_cycles=20_000)
    clean_report = clean.run_grid(["median"], [LARGE_BOOM])
    assert [o.ok for o in clean_report.outcomes] == [True]
    assert clean_report.outcomes[0].tma is not None
    assert "sweep:" in clean_report.summary()


def test_runner_quarantines_poisoned_entry_and_recovers(isolated_cache):
    reference = measure()
    key = cache.cache_key("median", 0.2, LARGE_BOOM)
    cache.store(key, reference.result)
    # Valid JSON, valid checksum key removed -> schema damage.
    path = cache.entry_path(key)
    path.write_text('{"workload": "median"}')
    runner = ResilientRunner(harness=PerfHarness(core="boom"),
                             event_names=EVENTS, scale=0.2)
    report = runner.run_grid(["median"], [LARGE_BOOM])
    outcome = report.outcomes[0]
    assert outcome.quarantined
    assert outcome.ok  # re-run succeeded after quarantine
    assert report.quarantined_keys == [key]
    assert cache.verify_entry(key)  # repopulated with a good entry


def test_runner_backoff_is_bounded_and_deterministic():
    sleeps = []
    injector = FaultInjector(FaultSpec(kind=STALL_CORE, seed=1,
                                       stall_at=32))
    harness = PerfHarness(core="boom", fault_injector=injector)
    runner = ResilientRunner(harness=harness, event_names=EVENTS,
                             scale=0.2, max_attempts=3,
                             max_cycles=20_000, backoff_base=0.5,
                             sleep=sleeps.append, use_cache=False)
    outcome = runner.run_one("median", LARGE_BOOM)
    assert not outcome.ok
    assert sleeps == [0.5, 1.0]


def test_runner_retargets_harness_for_rocket_configs(isolated_cache):
    runner = ResilientRunner(harness=PerfHarness(core="boom"),
                             event_names=EVENTS, scale=0.2)
    report = runner.run_grid(["vvadd"], [ROCKET])
    assert report.outcomes[0].ok


# ---------------------------------------------------------------------------
# the campaign acceptance gate
# ---------------------------------------------------------------------------

def test_campaign_seed0_catches_every_fault_class(isolated_cache):
    report = run_campaign(seed=0, faults=5, workload="median",
                          scale=0.2, max_cycles=100_000)
    assert report.clean_ok
    assert len(report.fault_classes) == len(FAULT_CLASSES)
    assert report.caught == len(report.trials) == 5
    assert report.passed
    rendered = report.render()
    assert "campaign PASSED" in rendered
    assert "5/5" in rendered


def test_reliability_error_payload_is_structured():
    try:
        raise CounterCorruption("boom", invariant="pmu-vs-core",
                                workload="w", config="c",
                                observed=1, expected=2)
    except ReliabilityError as exc:
        assert exc.invariant == "pmu-vs-core"
        assert exc.observed == 1
        assert exc.expected == 2
        assert "pmu-vs-core" in str(exc)
