"""Tests for the shared RetryPolicy (backoff, jitter, deadlines)."""

import pickle

import pytest

from repro.isa.errors import DeadlineExceeded
from repro.reliability import DEFAULT_RETRY_POLICY, RetryPolicy


# ---------------------------------------------------------------------------
# backoff schedule
# ---------------------------------------------------------------------------

def test_schedule_is_capped_exponential():
    policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=0.5,
                         multiplier=2.0)
    assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5]


def test_zero_base_delay_never_sleeps():
    policy = RetryPolicy(max_attempts=4, base_delay=0.0)
    assert all(delay == 0.0 for delay in policy.delays())


def test_jitter_is_deterministic_per_seed_and_salt():
    policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5, seed=7)
    again = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5, seed=7)
    assert list(policy.delays(salt="k")) == list(again.delays(salt="k"))
    # Distinct salts (and seeds) de-correlate the schedules.
    assert list(policy.delays(salt="k")) != list(policy.delays(salt="j"))
    assert (list(policy.delays(salt="k"))
            != list(policy.salted(8).delays(salt="k")))


def test_jitter_stays_within_band():
    policy = RetryPolicy(max_attempts=10, base_delay=0.1, max_delay=100.0,
                         multiplier=1.0, jitter=0.5, seed=3)
    for delay in policy.delays(salt="band"):
        assert 0.05 <= delay <= 0.15


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        DEFAULT_RETRY_POLICY.delay(-1)


def test_policy_is_frozen_and_picklable():
    policy = RetryPolicy(max_attempts=4, base_delay=0.25, jitter=0.1, seed=9)
    with pytest.raises(Exception):
        policy.max_attempts = 5  # type: ignore[misc]
    clone = pickle.loads(pickle.dumps(policy))
    assert clone == policy
    assert list(clone.delays(salt="x")) == list(policy.delays(salt="x"))


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------

def test_delay_never_extends_past_deadline():
    policy = RetryPolicy(max_attempts=3, base_delay=10.0, max_delay=10.0)
    assert policy.delay(0, deadline=105.0, now=100.0) == 5.0
    assert policy.delay(0, deadline=100.0, now=100.0) == 0.0


def test_check_deadline_raises_when_lapsed():
    policy = RetryPolicy()
    policy.check_deadline(None)
    policy.check_deadline(deadline=10.0, now=5.0)
    with pytest.raises(DeadlineExceeded):
        policy.check_deadline(deadline=10.0, now=10.0)


# ---------------------------------------------------------------------------
# call()
# ---------------------------------------------------------------------------

def test_call_retries_then_succeeds_without_real_sleep():
    attempts = []
    sleeps = []

    def flaky():
        attempts.append(len(attempts))
        if len(attempts) < 3:
            raise RuntimeError("transient")
        return "done"

    policy = RetryPolicy(max_attempts=4, base_delay=0.5, max_delay=0.5)
    result = policy.call(flaky, retry_on=(RuntimeError,),
                         sleep=sleeps.append)
    assert result == "done"
    assert len(attempts) == 3
    assert sleeps == [0.5, 0.5]


def test_call_reraises_after_exhaustion():
    policy = RetryPolicy(max_attempts=2, base_delay=0.0)
    calls = []

    def always_fails():
        calls.append(1)
        raise KeyError("nope")

    with pytest.raises(KeyError):
        policy.call(always_fails, retry_on=(KeyError,))
    assert len(calls) == 2


def test_call_honours_deadline_between_attempts():
    clock_readings = iter([0.0, 0.0, 99.0, 99.0])

    def never_succeeds():
        raise RuntimeError("transient")

    policy = RetryPolicy(max_attempts=5, base_delay=0.0)
    with pytest.raises(DeadlineExceeded):
        policy.call(never_succeeds, retry_on=(RuntimeError,),
                    deadline=50.0, sleep=lambda _s: None,
                    clock=lambda: next(clock_readings))
