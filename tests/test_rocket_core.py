"""Unit tests for the Rocket timing model."""

from repro.cores import ROCKET, RocketCore
from repro.cores.base import RocketConfig
from repro.isa import assemble, execute
from repro.trace import (capture_trace,
                         check_fetch_bubble_formula, rocket_tma_bundle)


def run_rocket(source: str, config: RocketConfig = ROCKET):
    program = assemble(source)
    trace = execute(program)
    return RocketCore(config).run(trace), trace


# Looped so the I$ warms up: the assertion targets steady-state IPC.
STRAIGHT_LINE = """
_start:
    li t0, 0
    li s0, 0
outer:
""" + "\n".join("    addi t0, t0, 1" for _ in range(32)) + """
    addi s0, s0, 1
    li s1, 15
    blt s0, s1, outer
    mv a0, t0
    li a7, 93
    ecall
"""


def test_straight_line_near_one_ipc():
    result, trace = run_rocket(STRAIGHT_LINE)
    assert result.instret == len(trace)
    # Single-issue in-order: IPC close to 1 once the I$ warms up.
    assert result.ipc > 0.6


def test_cycles_event_equals_cycles():
    result, _ = run_rocket(STRAIGHT_LINE)
    assert result.event("cycles") == result.cycles


def test_issued_equals_retired_in_order():
    """Rocket resolves branches in execute: no wrong-path issue."""
    result, _ = run_rocket("""
    _start:
        li t0, 0
        li t1, 50
    loop:
        addi t0, t0, 1
        blt t0, t1, loop
        li a7, 93
        ecall
    """)
    assert result.event("instr_issued") == result.event("instr_retired")


def test_load_use_interlock_detected():
    result, _ = run_rocket("""
    .data
    v: .dword 3
    .text
    _start:
""" + "\n".join("""
        la t0, v
        ld t1, 0(t0)
        add t2, t1, t1
""" for _ in range(20)) + """
        li a7, 93
        ecall
    """)
    assert result.event("load_use_interlock") > 10


def test_mul_div_interlock_detected():
    result, _ = run_rocket("""
    _start:
        li t0, 1000
        li t1, 7
""" + "\n".join("""
        div t2, t0, t1
        add t3, t2, t2
""" for _ in range(10)) + """
        li a7, 93
        ecall
    """)
    assert result.event("muldiv_interlock") > 10


def test_icache_miss_counted_on_cold_start():
    result, _ = run_rocket(STRAIGHT_LINE)
    assert result.event("icache_miss") >= 1
    assert result.l1i_stats.misses >= 1


def test_dcache_events_on_streaming_stores():
    body = "\n".join(f"""
        sd t0, {64 * i}(a0)
    """ for i in range(32))
    result, _ = run_rocket(f"""
    .data
    buf: .space {64 * 33}
    .text
    _start:
        la a0, buf
        li t0, 5
    {body}
        li a7, 93
        ecall
    """)
    assert result.event("dcache_miss") >= 16
    assert result.event("store") == 32


def test_mispredicted_branches_trigger_recovery():
    """A cold chain of taken branches thrashes the 28-entry BTB."""
    units = "\n".join(f"""
        beq zero, zero, skip_{i}
        addi s1, s1, 1
    skip_{i}:
        addi s2, s2, 1
    """ for i in range(64))
    result, _ = run_rocket(f"""
    _start:
        li s3, 0
    outer:
    {units}
        addi s3, s3, 1
        li t6, 3
        blt s3, t6, outer
        li a7, 93
        ecall
    """)
    assert result.event("cobr_mispredict") >= 150
    assert result.event("recovering") > 100


def test_class_events_sum_to_instret():
    result, _ = run_rocket("""
    .data
    v: .dword 1
    .text
    _start:
        la t0, v
        ld t1, 0(t0)
        sd t1, 0(t0)
        add t2, t1, t1
        beq zero, zero, next
    next:
        fence
        li a7, 93
        ecall
    """)
    class_sum = sum(result.event(name) for name in
                    ("load", "store", "atomic", "branch", "fence",
                     "system", "arith"))
    assert class_sum == result.instret


def test_fetch_bubble_formula_holds_on_trace():
    """§III: FetchBubble == !Recovering & (!IBufValid & IBufReady)."""
    program = assemble("""
    _start:
        li t0, 0
        li t1, 200
    loop:
        addi t0, t0, 1
        blt t0, t1, loop
        li a7, 93
        ecall
    """)
    trace = execute(program)
    tracer = capture_trace(RocketCore(ROCKET), trace, rocket_tma_bundle())
    signals = {f.name: tracer.signal(f.name) for f in tracer.bundle.fields}
    mismatches = check_fetch_bubble_formula(signals)
    assert mismatches <= max(2, len(tracer) // 1000)


def test_smaller_l1d_is_slower_on_big_working_set():
    from dataclasses import replace

    from repro.uarch.cache import CacheConfig

    source = """
    .data
    buf: .space 24576
    .text
    _start:
        li s0, 4
        li s1, 0
    pass_loop:
        la a0, buf
        li t0, 0
    touch:
        li t1, 3072
        bge t0, t1, touched
        slli t2, t0, 3
        add t2, a0, t2
        ld t3, 0(t2)
        add s1, s1, t3
        addi t0, t0, 7
        j touch
    touched:
        addi s0, s0, -1
        bnez s0, pass_loop
        li a7, 93
        ecall
    """
    big, _ = run_rocket(source, ROCKET)
    small_config = replace(
        ROCKET, name="Rocket-16K",
        l1d=CacheConfig("L1D", 16 * 1024, 8, 64, hit_latency=2))
    small, _ = run_rocket(source, small_config)
    assert small.cycles > big.cycles


def test_fence_serializes():
    result, _ = run_rocket("""
    _start:
        addi t0, t0, 1
        fence
        addi t0, t0, 1
        li a7, 93
        ecall
    """)
    assert result.event("fence") == 1


def test_result_exposes_stats_objects():
    result, _ = run_rocket(STRAIGHT_LINE)
    assert result.l1i_stats.accesses > 0
    assert result.commit_width == 1
    assert result.config_name == "Rocket"
