"""Graceful-shutdown tests for ``repro-tma serve`` (SIGTERM/SIGINT).

The signal handler itself only sets an event; the drain (which takes
locks and joins threads) runs on the main thread.  These tests drive a
real subprocess through the full sequence: boot, accept work, signal,
drain, exit 0.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import ServiceClient


def _start_server(cache_dir, *extra):
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir),
               PYTHONPATH="src", PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.cli", "serve",
         "--port", "0", "--executor", "thread", "--workers", "1", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    # The banner carries the ephemeral port.
    deadline = time.time() + 30
    banner = ""
    while time.time() < deadline:
        banner = process.stdout.readline()
        if "service on http://" in banner:
            break
    else:
        process.kill()
        pytest.fail(f"service never printed its banner: {banner!r}")
    url = banner.split("service on ", 1)[1].split()[0]
    return process, url


def _finish(process, sig):
    process.send_signal(sig)
    try:
        stdout, stderr = process.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        process.kill()
        pytest.fail(f"server did not exit after {sig!r}")
    return stdout, stderr


@pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_and_exits_cleanly(tmp_path, sig):
    process, url = _start_server(tmp_path)
    client = ServiceClient(url, timeout=30.0)
    receipt = client.submit("vvadd", retries=5, config="rocket", scale=0.1)
    record = client.wait(receipt["id"], timeout=60.0)
    assert record["state"] == "done"

    _stdout, stderr = _finish(process, sig)
    assert process.returncode == 0
    assert f"signal {int(sig)}" in stderr
    assert "drained" in stderr
    # The drain report reached the logs with the books intact.
    assert "'completed': 1" in stderr


def test_sigterm_mid_queue_persists_jobs_and_restart_resumes(tmp_path):
    process, url = _start_server(tmp_path)
    client = ServiceClient(url, timeout=30.0)
    # One job the worker will chew on, plus queued distinct jobs the
    # drain may have to persist if the signal wins the race.
    ids = []
    for workload in ("median", "qsort", "towers"):
        ids.append(client.submit(workload, retries=10, config="rocket",
                                 scale=0.2)["id"])
    _stdout, stderr = _finish(process, signal.SIGTERM)
    assert process.returncode == 0
    assert "drained" in stderr

    # Zero loss: every accepted job either completed, failed, or was
    # durably persisted for the next boot.
    drain_line = next(line for line in stderr.splitlines()
                      if line.startswith("drained:"))
    report = eval(drain_line.split("drained: ", 1)[1])  # noqa: S307 - our own repr
    assert (report["completed"] + report["failed"] + report["persisted"]
            == report["accepted"])

    if report["persisted"]:
        # A restart resumes the persisted jobs and finishes them.
        process, url = _start_server(tmp_path)
        try:
            client = ServiceClient(url, timeout=30.0)
            deadline = time.time() + 120
            while time.time() < deadline:
                counters = client.metrics()["counters"]
                done = (counters.get("jobs_completed", 0)
                        + counters.get("jobs_failed", 0))
                if done >= report["persisted"]:
                    break
                time.sleep(0.2)
            else:
                pytest.fail("persisted jobs never resumed after restart")
        finally:
            _stdout, stderr = _finish(process, signal.SIGTERM)
            assert process.returncode == 0
