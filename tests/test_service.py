"""End-to-end tests for the queue-driven TMA analysis service."""

import time

import pytest

from repro.service import (JobRejected, ServiceClient, ServiceError,
                           TMAService, serve_in_thread)
from repro.tools.pool import RunnerSpec
from repro.tools.parallel import RunnerSpec as ParallelRunnerSpec


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


def wait_done(service, job_ids, timeout=60.0):
    deadline = time.time() + timeout
    while True:
        states = [service.status(i)["state"] for i in job_ids]
        if all(s in ("done", "failed") for s in states):
            return states
        if time.time() > deadline:
            raise TimeoutError(f"jobs stuck in states {states}")
        time.sleep(0.02)


def make_service(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("executor", "thread")
    kwargs.setdefault("queue_capacity", 32)
    return TMAService(**kwargs)


# ----------------------------------------------------------------------
# Happy path + result payloads


def test_submit_executes_and_reports_tma():
    service = make_service().start()
    try:
        receipt = service.submit_payload(
            {"workload": "vvadd", "scale": 0.2, "config": "rocket"})
        assert receipt.accepted
        wait_done(service, [receipt.record.id])
        payload = service.status(receipt.record.id)
        assert payload["state"] == "done"
        result = payload["result"]
        assert result["from_cache"] is False
        assert result["cycles"] > 0 and result["ipc"] > 0
        level1 = result["tma"]["level1"]
        assert sum(level1.values()) == pytest.approx(1.0, abs=1e-3)
        assert payload["latency_seconds"] > 0
    finally:
        service.drain()


def test_unknown_job_id_and_validation():
    service = make_service().start()
    try:
        assert service.status("job-999999") is None
        from repro.service import JobValidationError

        with pytest.raises(JobValidationError):
            service.submit_payload({"workload": "not-a-workload"})
    finally:
        service.drain()


# ----------------------------------------------------------------------
# Dedup: one execution, N completions


def test_duplicate_jobs_execute_once_complete_n_times():
    service = make_service(workers=1).start()
    try:
        ids = []
        for i in range(8):
            receipt = service.submit_payload(
                {"workload": "median", "scale": 0.2, "config": "rocket",
                 "client": f"client-{i}"})
            assert receipt.accepted
            ids.append(receipt.record.id)
        states = wait_done(service, ids)
        assert states == ["done"] * 8
        assert service.metrics.counter("jobs_executed") == 1
        assert service.metrics.counter("dedup_hits") == 7
        assert service.metrics.counter("jobs_completed") == 8
        # Followers carry the same result payload as the primary.
        results = {service.status(i)["result"]["cycles"] for i in ids}
        assert len(results) == 1
    finally:
        service.drain()


# ----------------------------------------------------------------------
# O(1) repeat serving through the result store


def test_repeat_request_served_from_cache_without_pool():
    service = make_service().start()
    try:
        first = service.submit_payload(
            {"workload": "vvadd", "scale": 0.2, "config": "rocket"})
        wait_done(service, [first.record.id])
        executed_before = service.metrics.counter("jobs_executed")
        again = service.submit_payload(
            {"workload": "vvadd", "scale": 0.2, "config": "rocket"})
        # Completed synchronously on submit: no queue, no execution.
        assert again.record.state == "done"
        assert again.record.result["from_cache"] is True
        assert service.metrics.counter("jobs_executed") == executed_before
        assert service.metrics.counter("cache_hits") == 1
        assert (again.record.result["cycles"]
                == service.status(first.record.id)["result"]["cycles"])
    finally:
        service.drain()


def test_non_default_harness_options_bypass_result_store():
    service = make_service().start()
    try:
        base = {"workload": "vvadd", "scale": 0.2, "config": "rocket"}
        first = service.submit_payload(base)
        wait_done(service, [first.record.id])
        distributed = service.submit_payload(
            dict(base, increment_mode="distributed"))
        assert distributed.record.state != "done"  # must execute
        wait_done(service, [distributed.record.id])
        assert service.metrics.counter("jobs_executed") == 2
    finally:
        service.drain()


# ----------------------------------------------------------------------
# Backpressure


def test_full_queue_rejection_carries_retry_after():
    # No dispatcher: submissions stay queued, so the bound is exact.
    service = make_service(workers=1, queue_capacity=2)
    accepted = [service.submit_payload(
        {"workload": w, "scale": 0.2, "config": "rocket"})
        for w in ("vvadd", "median")]
    assert all(r.accepted for r in accepted)
    rejected = service.submit_payload(
        {"workload": "mergesort", "scale": 0.2, "config": "rocket"})
    assert not rejected.accepted
    assert rejected.record.state == "rejected"
    assert rejected.retry_after > 0
    assert service.metrics.counter("jobs_rejected") == 1
    service.drain(timeout=0.1)


# ----------------------------------------------------------------------
# Graceful drain


def test_drain_with_in_flight_jobs_loses_nothing():
    service = make_service(workers=1).start()
    ids = []
    for workload in ("vvadd", "median", "mergesort", "qsort"):
        receipt = service.submit_payload(
            {"workload": workload, "scale": 0.2, "config": "rocket"})
        assert receipt.accepted
        ids.append(receipt.record.id)
    # Drain immediately: some jobs are queued, maybe one in flight.
    report = service.drain(timeout=60.0)
    assert report["state"] == "drained"
    assert report["persisted"] == 0
    states = [service.status(i)["state"] for i in ids]
    assert states == ["done"] * 4
    accepted = service.metrics.counter("jobs_accepted")
    completed = service.metrics.counter("jobs_completed")
    failed = service.metrics.counter("jobs_failed")
    assert accepted == completed + failed == 4


def test_drain_rejects_new_submissions():
    service = make_service().start()
    service.drain()
    receipt = service.submit_payload(
        {"workload": "vvadd", "scale": 0.2, "config": "rocket"})
    assert not receipt.accepted


def test_drain_persists_queued_jobs_and_resume_completes_them(tmp_path):
    # Service with no dispatcher: accepted jobs never start executing.
    service = make_service(workers=1, queue_capacity=8)
    ids = []
    for workload in ("vvadd", "median"):
        receipt = service.submit_payload(
            {"workload": workload, "scale": 0.2, "config": "rocket"})
        assert receipt.accepted
        ids.append(receipt.record.id)
    dupe = service.submit_payload(
        {"workload": "vvadd", "scale": 0.2, "config": "rocket",
         "client": "other"})
    assert dupe.deduped
    report = service.drain(timeout=0.2)
    # persisted counts accepted submissions (2 primaries + 1 follower),
    # so the zero-loss invariant holds exactly.
    assert report["persisted"] == 3
    accepted = service.metrics.counter("jobs_accepted")
    assert accepted == (service.metrics.counter("jobs_completed")
                        + service.metrics.counter("jobs_failed")
                        + report["persisted"])
    assert service.metrics.counter("jobs_persisted") == report["persisted"]
    assert service.store.pending_path().exists()
    # The pending file must not look like a cache entry: pruning the
    # cache to zero entries must leave it untouched.
    from repro.tools import cache

    assert cache.usage().entries == 0
    assert cache.prune(max_entries=0) == []
    assert service.store.pending_path().exists()
    # Every accepted record is terminal: done/failed or durably requeued.
    for job_id in ids + [dupe.record.id]:
        assert service.status(job_id)["state"] == "requeued"

    resumed = make_service(workers=1, executor="inline").start(resume=True)
    try:
        assert resumed.metrics.counter("jobs_resumed") == 2
        assert not resumed.store.pending_path().exists()
        deadline = time.time() + 60
        while resumed.metrics.counter("jobs_completed") < 2:
            assert time.time() < deadline
            time.sleep(0.02)
    finally:
        resumed.drain()


# ----------------------------------------------------------------------
# Bounded record retention


def test_finished_records_evicted_beyond_retention():
    service = make_service(workers=1, executor="inline",
                           record_retention=3).start()
    try:
        ids = []
        for workload in ("vvadd", "median", "mergesort", "qsort", "towers"):
            receipt = service.submit_payload(
                {"workload": workload, "scale": 0.1, "config": "rocket"})
            assert receipt.accepted
            ids.append(receipt.record.id)
        deadline = time.time() + 60
        while service.metrics.counter("jobs_completed") < 5:
            assert time.time() < deadline
            time.sleep(0.02)
        # Only the newest finished records are retained; the oldest
        # were evicted and now answer 404.
        assert len(service.records()) <= 3
        assert service.metrics.counter("records_evicted") >= 2
        assert service.status(ids[-1]) is not None
        assert service.status(ids[0]) is None
    finally:
        service.drain()


# ----------------------------------------------------------------------
# Worker-pool lifecycle: shutdown refusal + crash attribution


class _FakeExecutor:
    """Executor stub recording shutdowns; futures never complete."""

    def __init__(self):
        self.shut = False

    def submit(self, fn, *args, **kwargs):
        from concurrent.futures import Future

        return Future()

    def shutdown(self, wait=True, **_):
        self.shut = True


def _fake_pool():
    from repro.service.workers import WorkerPool

    created = []

    def factory(workers):
        executor = _FakeExecutor()
        created.append(executor)
        return executor

    return WorkerPool(workers=1, factory=factory), created


def _spec():
    from repro.service import TMAJob

    return TMAJob(workload="vvadd", scale=0.2, config="rocket").runner_spec()


def test_worker_pool_refuses_submit_after_shutdown():
    pool, created = _fake_pool()
    pool.submit(_spec(), "vvadd", "rocket")
    assert len(created) == 1
    pool.shutdown()
    with pytest.raises(RuntimeError):
        pool.submit(_spec(), "vvadd", "rocket")
    assert len(created) == 1  # no executor resurrected after shutdown


def test_stale_crash_report_never_kills_rebuilt_executor():
    from concurrent.futures import BrokenExecutor

    pool, created = _fake_pool()
    stale = pool.submit(_spec(), "vvadd", "rocket")  # from executor A
    assert pool.note_broken(BrokenExecutor("worker died"), stale)
    assert created[0].shut is True  # A torn down, pool rebuilt
    assert pool.rebuilds == 1
    pool.submit(_spec(), "vvadd", "rocket")  # from executor B
    assert len(created) == 2
    # A late crash report for executor A must not tear down healthy B.
    assert pool.note_broken(BrokenExecutor("worker died"), stale)
    assert created[1].shut is False
    assert pool.rebuilds == 1
    pool.submit(_spec(), "vvadd", "rocket")
    assert len(created) == 2  # B still current
    pool.shutdown()
    assert created[1].shut is True


# ----------------------------------------------------------------------
# Worker-crash recovery (real process pool)


def test_crashed_worker_requeues_job(monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_CRASH_WORKLOAD", "median")
    service = TMAService(workers=1, executor="process",
                         queue_capacity=8).start()
    try:
        receipt = service.submit_payload(
            {"workload": "median", "scale": 0.1, "config": "rocket"})
        assert receipt.accepted
        wait_done(service, [receipt.record.id], timeout=120.0)
        payload = service.status(receipt.record.id)
        assert payload["state"] == "done"
        assert payload["requeues"] >= 1
        assert service.metrics.counter("worker_crashes") >= 1
        assert service.metrics.counter("jobs_requeued") >= 1
        assert service.pool.rebuilds >= 1
    finally:
        service.drain()


def test_repeated_crashes_fail_after_max_requeues():
    # A factory whose every submission dies like a broken pool.
    from concurrent.futures import BrokenExecutor, Future

    class AlwaysBroken:
        def submit(self, fn, *args, **kwargs):
            future = Future()
            future.set_exception(BrokenExecutor("worker died"))
            return future

        def shutdown(self, wait=True, **_):
            return None

    service = TMAService(workers=1, executor_factory=lambda n: AlwaysBroken(),
                         queue_capacity=8, max_requeues=2).start()
    try:
        receipt = service.submit_payload(
            {"workload": "vvadd", "scale": 0.2, "config": "rocket"})
        wait_done(service, [receipt.record.id], timeout=30.0)
        payload = service.status(receipt.record.id)
        assert payload["state"] == "failed"
        assert payload["requeues"] == 2
        assert "crashed" in payload["error"]
        assert service.metrics.counter("worker_crashes") == 3
    finally:
        service.drain(timeout=1.0)


# ----------------------------------------------------------------------
# HTTP API + client


def test_http_api_end_to_end():
    service = make_service().start()
    server, _thread = serve_in_thread(service)
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        receipt = client.submit("vvadd", scale=0.2, config="rocket",
                                client="http-test")
        assert receipt["id"].startswith("job-")
        record = client.wait(receipt["id"], timeout=60.0)
        assert record["state"] == "done"
        assert record["result"]["tma"]["dominant"]

        health = client.healthz()
        assert health["status"] == "ok"
        metrics = client.metrics()
        assert metrics["counters"]["jobs_completed"] >= 1
        assert "queue_depth" in metrics["gauges"]
        assert "job_latency_seconds" in metrics["histograms"]

        with pytest.raises(ServiceError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.submit("not-a-workload")
        assert excinfo.value.status == 400

        report = client.drain()
        assert report["state"] == "drained"
        assert client.healthz()["status"] == "drained"
    finally:
        server.shutdown()
        service.drain()


def test_http_backpressure_maps_to_429():
    service = make_service(workers=1, queue_capacity=1)  # not started
    server, _thread = serve_in_thread(service)
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        client.submit("vvadd", scale=0.2, config="rocket")
        with pytest.raises(JobRejected) as excinfo:
            client.submit("median", scale=0.2, config="rocket")
        assert excinfo.value.retry_after > 0
    finally:
        server.shutdown()
        service.drain(timeout=0.1)


# ----------------------------------------------------------------------
# Shared pool plumbing


def test_runner_spec_shared_between_parallel_and_service():
    assert RunnerSpec is ParallelRunnerSpec


def test_job_runner_spec_reflects_options():
    from repro.service import TMAJob

    job = TMAJob(workload="vvadd", config="small-boom", scale=0.4,
                 increment_mode="distributed", mode="linux",
                 use_cache=False)
    spec = job.runner_spec()
    assert spec.core == "boom"
    assert spec.increment_mode == "distributed"
    assert spec.mode == "linux"
    assert spec.scale == 0.4
    assert spec.use_cache is False


# ----------------------------------------------------------------------
# Trace-memoization metrics


def test_trace_cache_metrics_surface_in_registry(monkeypatch):
    from repro.workloads import clear_caches

    monkeypatch.setenv("REPRO_EXEC_ENGINE", "compiled")
    clear_caches()
    service = make_service(workers=1, executor="inline").start()
    try:
        first = service.submit_payload(
            {"workload": "towers", "scale": 0.3, "config": "rocket",
             "use_cache": False})
        second = service.submit_payload(
            {"workload": "towers", "scale": 0.3, "config": "small-boom",
             "use_cache": False})
        wait_done(service, [first.record.id, second.record.id])
        snapshot = service.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters.get("trace_cache_misses", 0) == 1
        hits = (counters.get("trace_cache_mem_hits", 0)
                + counters.get("trace_cache_disk_hits", 0))
        assert hits >= 1
        assert snapshot["gauges"]["trace_cache_hit_rate"] >= 0.5
    finally:
        service.drain()
