"""Grid fan-out through the analysis service.

A ``POST /grids`` submission expands one (workload, grid) request into
per-point jobs riding the normal scheduler/store/worker path, admitted
atomically (all points queued or the whole grid rejected).  These tests
pin the GridJob model and its canonical grid key, the all-or-nothing
``submit_many`` admission, per-point dedup across overlapping grids
from different clients, the aggregated grid status, the service metric
counters (``grid_points_*``, ``grid_dedup_hits``), and the HTTP
endpoints end to end — including the drain invariant: every accepted
point job completes, fails, or is durably persisted.
"""

import time

import pytest

from repro.service import ServiceClient, TMAService, serve_in_thread
from repro.service.job import (GridJob, JobRecord, JobValidationError,
                               TMAJob)
from repro.service.scheduler import JobScheduler


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


def make_service(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("executor", "thread")
    kwargs.setdefault("queue_capacity", 32)
    return TMAService(**kwargs)


def wait_grid_done(service, grid_id, timeout=120.0):
    deadline = time.time() + timeout
    while True:
        status = service.grid_status(grid_id)
        if status["state"] in ("done", "failed", "rejected"):
            return status
        if time.time() > deadline:
            raise TimeoutError(f"grid stuck in {status['state']!r}")
        time.sleep(0.02)


def assert_drain_invariant(report):
    assert report["completed"] + report["failed"] + report["persisted"] == \
        report["accepted"]


# ----------------------------------------------------------------------
# GridJob model


def test_grid_job_expands_to_point_jobs():
    grid = GridJob(workload="vvadd", grid="rocket,small-boom",
                   vary=("l1d=4,8",), scale=0.2)
    pairs = grid.expand()
    assert [point.key for point, _ in pairs] == [
        "rocket+l1d=4", "rocket+l1d=8",
        "small-boom+l1d=4", "small-boom+l1d=8",
    ]
    for point, job in pairs:
        assert job.config == point.key
        assert job.workload == "vvadd"
        assert job.scale == 0.2
        job.validate()  # point keys are valid job configs


def test_grid_job_payload_round_trip_and_rejections():
    grid = GridJob(workload="median", grid="rocket", vary=("l1d=8",),
                   scale=0.5)
    clone = GridJob.from_payload(grid.to_payload())
    assert clone == grid
    with pytest.raises(JobValidationError, match="unknown grid fields"):
        GridJob.from_payload({"workload": "vvadd", "points": "rocket"})
    with pytest.raises(JobValidationError):
        GridJob.from_payload({"workload": "vvadd", "vary": "l1d=8"})
    with pytest.raises(JobValidationError):
        GridJob(workload="vvadd", grid="warp-core").validate()
    with pytest.raises(JobValidationError):
        GridJob(workload="no-such-workload").validate()


def test_grid_key_is_order_independent_but_option_sensitive():
    a = GridJob(workload="vvadd", grid="rocket,small-boom", scale=0.2)
    b = GridJob(workload="vvadd", grid="small-boom,rocket", scale=0.2)
    assert a.grid_key() == b.grid_key()
    assert a.grid_key() != GridJob(workload="vvadd", grid="rocket,small-boom",
                                   scale=0.3).grid_key()
    assert a.grid_key() != GridJob(workload="vvadd", grid="rocket,small-boom",
                                   scale=0.2, mode="linux").grid_key()


def test_point_key_config_accepted_as_plain_job():
    job = TMAJob(workload="vvadd", config="rocket+l1d=4", scale=0.2)
    job.validate()
    with pytest.raises(JobValidationError):
        TMAJob(workload="vvadd", config="rocket+warp=9", scale=0.2).validate()


# ----------------------------------------------------------------------
# atomic batch admission


def make_record(suffix, workload="vvadd", config="rocket", scale=0.2):
    job = TMAJob(workload=workload, config=config, scale=scale)
    return JobRecord(id=f"job-{suffix}", job=job, client="c", priority=1)


def test_submit_many_rejects_whole_batch_when_over_capacity():
    scheduler = JobScheduler(capacity=2)
    records = [make_record(i, scale=0.1 * (i + 1)) for i in range(3)]
    receipts = scheduler.submit_many(records)
    assert all(not r.accepted for r in receipts)
    assert scheduler.queue_depth == 0
    for record in records:
        assert record.state == "rejected"
        assert "queue cannot hold" in record.error


def test_submit_many_coalesces_within_and_across_batches():
    scheduler = JobScheduler(capacity=2)
    first = make_record("a")
    assert scheduler.submit(first).accepted
    # One duplicate of the queued primary, one internal duplicate pair:
    # only `fresh` consumes the remaining slot.
    dup = make_record("dup")
    fresh = make_record("fresh", workload="median")
    fresh_dup = make_record("fresh-dup", workload="median")
    receipts = scheduler.submit_many([dup, fresh, fresh_dup])
    assert [r.accepted for r in receipts] == [True, True, True]
    assert [r.deduped for r in receipts] == [True, False, True]
    assert dup.coalesced_with == first.id
    assert fresh_dup.coalesced_with == fresh.id
    assert scheduler.queue_depth == 2


def test_submit_many_when_closed_rejects_everything():
    scheduler = JobScheduler(capacity=8)
    scheduler.close()
    receipts = scheduler.submit_many([make_record("x")])
    assert not receipts[0].accepted
    assert "draining" in receipts[0].record.error


# ----------------------------------------------------------------------
# service fan-out, dedup, metrics


def test_grid_submission_executes_full_matrix():
    service = make_service().start()
    try:
        record = service.submit_grid_payload({
            "workload": "vvadd", "grid": "rocket,small-boom",
            "scale": 0.2, "client": "alice"})
        assert record.accepted
        status = wait_grid_done(service, record.id)
        assert status["state"] == "done"
        assert set(status["points"]) == {"rocket", "small-boom"}
        for entry in status["points"].values():
            assert entry["state"] == "done"
            assert entry["result"]["cycles"] > 0
        snapshot = service.metrics_snapshot()
        assert snapshot["counters"]["grids_submitted"] == 1
        assert snapshot["counters"]["grid_points_total"] == 2
    finally:
        assert_drain_invariant(service.drain())


def test_overlapping_grids_from_two_clients_share_executions():
    service = make_service(workers=1).start()
    try:
        first = service.submit_grid_payload({
            "workload": "vvadd", "grid": "rocket,small-boom,medium-boom",
            "scale": 0.2, "client": "alice"})
        # Same canonical grid, different client and point order: every
        # point coalesces onto alice's in-flight primaries (or the
        # store, if a point already finished).
        second = service.submit_grid_payload({
            "workload": "vvadd", "grid": "medium-boom,rocket,small-boom",
            "scale": 0.2, "client": "bob"})
        assert second.accepted
        assert second.coalesced_with == first.id
        done_first = wait_grid_done(service, first.id)
        done_second = wait_grid_done(service, second.id)
        assert done_first["state"] == done_second["state"] == "done"
        for key, entry in done_first["points"].items():
            assert entry["result"]["cycles"] == \
                done_second["points"][key]["result"]["cycles"]
        counters = service.metrics_snapshot()["counters"]
        # One execution per unique point, no matter how many grids
        # asked for it.
        assert counters["jobs_executed"] == 3
        assert counters["grid_dedup_hits"] == 1
        assert (counters.get("grid_points_coalesced", 0)
                + counters.get("grid_points_cached", 0)) == 3
        gauges = service.metrics_snapshot()["gauges"]
        assert gauges["grid_share_rate"] == pytest.approx(0.5)
    finally:
        assert_drain_invariant(service.drain())


def test_partially_overlapping_grid_is_served_from_store():
    service = make_service().start()
    try:
        first = service.submit_grid_payload({
            "workload": "median", "grid": "rocket,small-boom",
            "scale": 0.2, "client": "alice"})
        wait_grid_done(service, first.id)
        # Two of three points already have stored results; only the
        # new one executes.
        second = service.submit_grid_payload({
            "workload": "median", "grid": "rocket,small-boom,medium-boom",
            "scale": 0.2, "client": "bob"})
        assert second.coalesced_with is None  # different grid key
        status = wait_grid_done(service, second.id)
        assert status["state"] == "done"
        counters = service.metrics_snapshot()["counters"]
        assert counters["grid_points_cached"] == 2
        assert counters["jobs_executed"] == 3  # 2 from first + 1 new
    finally:
        assert_drain_invariant(service.drain())


def test_grid_rejected_atomically_when_queue_cannot_hold_it():
    service = make_service(workers=1, queue_capacity=2,
                           executor="inline").start()
    try:
        service.scheduler.close()  # freeze admission deterministically
        record = service.submit_grid_payload({
            "workload": "vvadd", "grid": "rocket,small-boom,medium-boom",
            "scale": 0.2})
        assert not record.accepted
        status = service.grid_status(record.id)
        assert status["state"] == "rejected"
        counters = service.metrics_snapshot()["counters"]
        assert counters["grids_rejected"] == 1
        assert counters["jobs_rejected"] == 3
    finally:
        service.drain()


def test_grid_status_unknown_id_is_none():
    service = make_service()
    assert service.grid_status("grid-9999") is None


# ----------------------------------------------------------------------
# HTTP endpoints


def test_http_grid_endpoints_end_to_end():
    service = make_service().start()
    server, _thread = serve_in_thread(service)
    host, port = server.server_address
    client = ServiceClient(f"http://{host}:{port}")
    try:
        receipt = client.submit_grid("vvadd", grid="rocket,small-boom",
                                     scale=0.2, client="http")
        assert receipt["points"] == 2
        status = client.wait_grid(receipt["id"])
        assert status["state"] == "done"
        assert status["grid_key"] == receipt["grid_key"]
        for entry in status["points"].values():
            assert entry["result"]["cycles"] > 0
        # Unknown grid id -> 404; malformed grid -> 400.
        from repro.service import ServiceError
        with pytest.raises(ServiceError) as missing:
            client.grid_status("grid-9999")
        assert missing.value.status == 404
        with pytest.raises(ServiceError) as bad:
            client.submit_grid("vvadd", grid="warp-core")
        assert bad.value.status == 400
        metrics = client.metrics()
        # The malformed submission failed validation before admission,
        # so it never counts as submitted.
        assert metrics["counters"]["grids_submitted"] == 1
    finally:
        client.drain()
        server.shutdown()
