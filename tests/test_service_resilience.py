"""Resilience tests: WorkerPool crash storms, ServiceClient retries.

Satellites of the chaos PR: the pool must rebuild exactly once per
broken executor no matter how many threads report the same crash, and
the HTTP client must retry idempotent requests (only) through the
shared RetryPolicy, honouring the server's backpressure hints.
"""

import threading
from concurrent.futures import BrokenExecutor, Future

import pytest

from repro.chaos import injector
from repro.chaos.plan import ChaosPlan
from repro.reliability import RetryPolicy
from repro.service.client import JobRejected, ServiceClient, ServiceError
from repro.service.workers import WorkerPool


@pytest.fixture(autouse=True)
def chaos_off():
    injector.deactivate()
    injector.reset_counters()
    yield
    injector.deactivate()
    injector.reset_counters()


# ---------------------------------------------------------------------------
# WorkerPool under a crash storm
# ---------------------------------------------------------------------------

class _Executor:
    """Fake executor: optionally broken at submission time."""

    def __init__(self, broken=False):
        self.broken = broken
        self.shut = False
        self.submissions = 0

    def submit(self, fn, *args, **kwargs):
        self.submissions += 1
        if self.broken:
            raise BrokenExecutor("worker died while idle")
        future = Future()
        future.set_result("ok")
        return future

    def shutdown(self, wait=True, **_):
        self.shut = True


def _storm_pool(broken_count, max_attempts):
    created = []

    def factory(workers):
        executor = _Executor(broken=len(created) < broken_count)
        created.append(executor)
        return executor

    pool = WorkerPool(
        workers=1, factory=factory,
        retry_policy=RetryPolicy(max_attempts=max_attempts, base_delay=0.0))
    return pool, created


def _spec():
    from repro.service import TMAJob

    return TMAJob(workload="vvadd", scale=0.2, config="rocket").runner_spec()


def test_submit_retries_through_broken_executors_one_rebuild_each():
    pool, created = _storm_pool(broken_count=3, max_attempts=4)
    future = pool.submit(_spec(), "vvadd", "rocket")
    assert future.result() == "ok"
    # Three broken executors burned three attempts; each was rebuilt
    # exactly once, and the fourth executor served the job.
    assert pool.rebuilds == 3
    assert len(created) == 4
    assert all(executor.shut for executor in created[:3])
    assert created[3].shut is False
    pool.shutdown()


def test_submit_exhausts_retry_policy_and_raises():
    pool, created = _storm_pool(broken_count=10, max_attempts=2)
    with pytest.raises(BrokenExecutor):
        pool.submit(_spec(), "vvadd", "rocket")
    assert pool.rebuilds == 2
    assert len(created) == 2
    pool.shutdown()


def test_concurrent_crash_reports_cause_exactly_one_rebuild():
    pool, created = _storm_pool(broken_count=0, max_attempts=2)
    future = pool.submit(_spec(), "vvadd", "rocket")
    barrier = threading.Barrier(8)
    verdicts = []

    def report():
        barrier.wait()
        verdicts.append(
            pool.note_broken(BrokenExecutor("worker died"), future))

    threads = [threading.Thread(target=report) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Every report classified the failure as a crash, but the identity
    # check collapsed the storm into a single rebuild.
    assert verdicts == [True] * 8
    assert pool.rebuilds == 1
    assert created[0].shut is True
    pool.submit(_spec(), "vvadd", "rocket")
    assert len(created) == 2
    pool.shutdown()


# ---------------------------------------------------------------------------
# ServiceClient transport retries
# ---------------------------------------------------------------------------

#: Nothing listens here: connections are refused immediately.
DEAD_URL = "http://127.0.0.1:1"


def test_idempotent_get_is_retried_on_connection_errors():
    client = ServiceClient(
        DEAD_URL, timeout=0.5,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0))
    with pytest.raises(ServiceError) as excinfo:
        client.metrics()
    assert excinfo.value.status == 0
    # All three policy attempts hit the wire.
    assert client._request_sequence == 3


def test_submission_is_not_retried_on_connection_errors():
    client = ServiceClient(
        DEAD_URL, timeout=0.5,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0))
    with pytest.raises(ServiceError) as excinfo:
        client.submit("vvadd", config="rocket", scale=0.1)
    assert excinfo.value.status == 0
    # The job may have been accepted before the connection died, so
    # exactly one wire attempt is allowed.
    assert client._request_sequence == 1


def test_drain_is_retried_like_a_get():
    client = ServiceClient(
        DEAD_URL, timeout=0.5,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0))
    with pytest.raises(ServiceError):
        client.drain()
    assert client._request_sequence == 2


def test_chaos_connection_faults_exhaust_the_policy_without_a_server():
    # With every request chaos-refused, the client never even reaches
    # the (dead) socket — and the retry loop still stays bounded.
    plan = ChaosPlan(seed=2, client_fault_rate=1.0)
    client = ServiceClient(
        DEAD_URL, timeout=0.5,
        retry_policy=RetryPolicy(max_attempts=4, base_delay=0.0))
    with injector.active(plan):
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
    assert excinfo.value.status == 0
    assert client._request_sequence == 4
    faults = injector.counters()
    assert sum(count for name, count in faults.items()
               if name.startswith("client_")) >= 1


def test_submit_retries_429_honouring_retry_after(monkeypatch):
    client = ServiceClient(
        "http://unused", retry_policy=RetryPolicy(max_attempts=3,
                                                  base_delay=0.0))
    rejections = [JobRejected(429, {"error": "queue full",
                                    "retry_after": 0.75})] * 2
    calls = []

    def fake_request(method, path, body=None, idempotent=None):
        calls.append((method, path))
        if rejections:
            raise rejections.pop(0)
        return {"id": "job-1", "state": "queued"}

    sleeps = []
    monkeypatch.setattr(client, "_request", fake_request)
    monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)

    receipt = client.submit("vvadd", retries=5, config="rocket")
    assert receipt["id"] == "job-1"
    assert len(calls) == 3
    # Each pause honoured the server's hint (capped at 2s).
    assert sleeps == [0.75, 0.75]


def test_submit_gives_up_when_retry_budget_is_exhausted(monkeypatch):
    client = ServiceClient("http://unused")

    def always_rejected(method, path, body=None, idempotent=None):
        raise JobRejected(429, {"error": "queue full", "retry_after": 0.01})

    monkeypatch.setattr(client, "_request", always_rejected)
    monkeypatch.setattr("repro.service.client.time.sleep", lambda _s: None)
    with pytest.raises(JobRejected):
        client.submit("vvadd", retries=2, config="rocket")


def test_wait_treats_quarantined_as_terminal(monkeypatch):
    client = ServiceClient("http://unused")
    monkeypatch.setattr(
        client, "status",
        lambda job_id: {"state": "quarantined", "id": job_id})
    record = client.wait("job-9", timeout=1.0)
    assert record["state"] == "quarantined"
