"""Unit tests for the service job model, scheduler, and metrics."""

import pytest

from repro.service.job import (JobRecord, JobValidationError, TMAJob,
                               outcome_payload)
from repro.service.metrics import Histogram, MetricsRegistry
from repro.service.scheduler import JobScheduler


def make_record(workload="vvadd", scale=0.2, config="rocket",
                client="alice", priority=1, **job_fields):
    job = TMAJob(workload=workload, scale=scale, config=config, **job_fields)
    return JobRecord(id=f"job-{workload}-{client}-{priority}", job=job,
                     client=client, priority=priority)


# ----------------------------------------------------------------------
# Job model


def test_job_payload_round_trip():
    job = TMAJob(workload="median", config="small-boom", scale=0.5,
                 events=("uops_issued",))
    clone = TMAJob.from_payload(job.to_payload())
    assert clone == job
    assert clone.job_key() == job.job_key()


def test_job_key_canonical_across_clients_and_priorities():
    a = make_record(client="alice", priority=0)
    b = make_record(client="bob", priority=9)
    assert a.job_key == b.job_key


def test_job_key_sensitive_to_analysis_inputs():
    base = TMAJob(workload="vvadd", scale=0.2, config="rocket")
    keys = {
        base.job_key(),
        TMAJob(workload="median", scale=0.2, config="rocket").job_key(),
        TMAJob(workload="vvadd", scale=0.3, config="rocket").job_key(),
        TMAJob(workload="vvadd", scale=0.2, config="small-boom").job_key(),
        TMAJob(workload="vvadd", scale=0.2, config="rocket",
               increment_mode="distributed").job_key(),
        TMAJob(workload="vvadd", scale=0.2, config="rocket",
               mode="linux").job_key(),
        # Execution policy changes what a measurement returns, so it
        # must split the key too: a force-fresh request must not be
        # served through a cached-path primary, and different watchdog
        # budgets must not share a timeout verdict.
        TMAJob(workload="vvadd", scale=0.2, config="rocket",
               use_cache=False).job_key(),
        TMAJob(workload="vvadd", scale=0.2, config="rocket",
               max_cycles=1234).job_key(),
        TMAJob(workload="vvadd", scale=0.2, config="rocket",
               max_cycles=None).job_key(),
    }
    assert len(keys) == 9


@pytest.mark.parametrize("payload,fragment", [
    ({}, "workload"),
    ({"workload": "no-such-workload"}, "unknown workload"),
    ({"workload": "vvadd", "config": "no-such-config"}, "unknown config"),
    ({"workload": "vvadd", "scale": -1.0}, "scale"),
    ({"workload": "vvadd", "increment_mode": "bogus"}, "increment mode"),
    ({"workload": "vvadd", "mode": "windows"}, "unknown mode"),
    ({"workload": "vvadd", "surprise": 1}, "unknown job fields"),
    ({"workload": "vvadd", "events": [1, 2]}, "events"),
])
def test_job_validation_rejects(payload, fragment):
    with pytest.raises(JobValidationError, match=fragment):
        TMAJob.from_payload(payload)


# ----------------------------------------------------------------------
# Scheduler: bounded admission + backpressure


def test_full_queue_rejects_with_depth():
    scheduler = JobScheduler(capacity=2)
    r1 = scheduler.submit(make_record("vvadd"))
    r2 = scheduler.submit(make_record("median"))
    r3 = scheduler.submit(make_record("mergesort"))
    assert r1.accepted and r2.accepted
    assert not r3.accepted
    assert r3.record.state == "rejected"
    assert r3.queue_depth == 2
    assert scheduler.queue_depth == 2


def test_rejected_job_never_enters_queue():
    scheduler = JobScheduler(capacity=1)
    scheduler.submit(make_record("vvadd"))
    rejected = scheduler.submit(make_record("median"))
    assert not rejected.accepted
    first = scheduler.next_job(timeout=0)
    assert first.job.workload == "vvadd"
    assert scheduler.next_job(timeout=0) is None


# ----------------------------------------------------------------------
# Scheduler: dedup / coalescing


def test_duplicates_coalesce_without_consuming_slots():
    scheduler = JobScheduler(capacity=1)
    primary = scheduler.submit(make_record("vvadd", client="alice"))
    dupes = [scheduler.submit(make_record("vvadd", client=f"c{i}"))
             for i in range(5)]
    assert primary.accepted and not primary.deduped
    assert all(d.accepted and d.deduped for d in dupes)
    # Queue holds only the primary: capacity-1 is not exhausted by dupes.
    assert scheduler.queue_depth == 1
    for dupe in dupes:
        assert dupe.record.coalesced_with == primary.record.id


def test_resolve_fans_out_to_all_followers():
    scheduler = JobScheduler(capacity=4)
    primary = scheduler.submit(make_record("vvadd", client="a")).record
    followers = [scheduler.submit(make_record("vvadd", client=f"c{i}")).record
                 for i in range(3)]
    running = scheduler.next_job(timeout=0)
    assert running is primary
    resolved = scheduler.resolve(primary)
    assert resolved == followers
    # After resolve the key is free again: a new submission re-executes.
    fresh = scheduler.submit(make_record("vvadd", client="later"))
    assert fresh.accepted and not fresh.deduped


def test_dedup_attaches_to_running_primary():
    scheduler = JobScheduler(capacity=4)
    primary = scheduler.submit(make_record("vvadd")).record
    assert scheduler.next_job(timeout=0) is primary  # now running
    dupe = scheduler.submit(make_record("vvadd", client="bob"))
    assert dupe.deduped
    assert scheduler.resolve(primary) == [dupe.record]


# ----------------------------------------------------------------------
# Scheduler: priority + fair share


def test_priority_classes_dispatch_in_order():
    scheduler = JobScheduler(capacity=8)
    scheduler.submit(make_record("vvadd", priority=2))
    scheduler.submit(make_record("median", priority=0))
    scheduler.submit(make_record("mergesort", priority=1))
    order = [scheduler.next_job(timeout=0).job.workload for _ in range(3)]
    assert order == ["median", "mergesort", "vvadd"]


def test_round_robin_fair_share_between_clients():
    scheduler = JobScheduler(capacity=16)
    for workload in ("vvadd", "median", "mergesort"):
        scheduler.submit(make_record(workload, client="chatty"))
    scheduler.submit(make_record("qsort", client="quiet"))
    order = [(scheduler.next_job(timeout=0).client) for _ in range(4)]
    # The quiet client is served second, not after chatty's whole backlog.
    assert order == ["chatty", "quiet", "chatty", "chatty"]


def test_requeue_goes_to_the_front():
    scheduler = JobScheduler(capacity=8)
    crashed = scheduler.submit(make_record("vvadd")).record
    scheduler.submit(make_record("median"))
    assert scheduler.next_job(timeout=0) is crashed
    scheduler.requeue(crashed)
    assert crashed.requeues == 1
    assert scheduler.next_job(timeout=0) is crashed  # before median


# ----------------------------------------------------------------------
# Scheduler: close + drain


def test_closed_scheduler_rejects():
    scheduler = JobScheduler(capacity=8)
    scheduler.close()
    receipt = scheduler.submit(make_record("vvadd"))
    assert not receipt.accepted
    assert "draining" in receipt.record.error


def test_drain_queued_returns_everything_in_priority_order():
    scheduler = JobScheduler(capacity=8)
    scheduler.submit(make_record("vvadd", priority=3))
    scheduler.submit(make_record("median", priority=0))
    scheduler.submit(make_record("mergesort", priority=1))
    drained = scheduler.drain_queued()
    assert [r.job.workload for r in drained] == ["median", "mergesort",
                                                 "vvadd"]
    assert scheduler.queue_depth == 0
    # Drained keys are released: a resubmission is a fresh primary.
    assert scheduler.submit(make_record("median", priority=0)).deduped is False


# ----------------------------------------------------------------------
# Metrics


def test_histogram_percentiles_exact_under_capacity():
    histogram = Histogram(capacity=100)
    for value in range(1, 101):
        histogram.observe(float(value))
    snap = histogram.snapshot()
    assert snap["count"] == 100
    assert snap["min"] == 1.0 and snap["max"] == 100.0
    assert snap["p50"] == pytest.approx(50.0, abs=1.0)
    assert snap["p95"] == pytest.approx(95.0, abs=1.0)
    assert snap["p99"] == pytest.approx(99.0, abs=1.0)


def test_histogram_window_bounded():
    histogram = Histogram(capacity=8)
    for value in range(1000):
        histogram.observe(float(value))
    assert len(histogram._window) == 8
    assert histogram.count == 1000


def test_registry_snapshot_shape():
    metrics = MetricsRegistry()
    metrics.inc("jobs_submitted", 3)
    metrics.set_gauge("queue_depth", 7)
    metrics.observe("job_latency_seconds", 0.25)
    snap = metrics.snapshot()
    assert snap["counters"]["jobs_submitted"] == 3
    assert snap["gauges"]["queue_depth"] == 7
    assert snap["histograms"]["job_latency_seconds"]["count"] == 1
    assert "p99" in snap["histograms"]["job_latency_seconds"]


def test_outcome_payload_failure_shape():
    from repro.reliability.runner import RunOutcome

    outcome = RunOutcome(workload="vvadd", config_name="Rocket",
                         status="failed", attempts=3,
                         error_class="RunTimeout", error="boom")
    payload = outcome_payload(outcome)
    assert payload["status"] == "failed"
    assert payload["error_class"] == "RunTimeout"
    assert "tma" not in payload
