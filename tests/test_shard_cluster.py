"""Multi-node service tier tests: shards, gateway, executor ladder.

Covers the tentpole guarantees with a real in-process cluster (three
shard servers on loopback HTTP sharing one result store):

- routing exactness — each canonical job key lands on exactly the
  shard the ring assigns, so cluster-wide dedup is the single-node
  dedup;
- grid fan-out — a ``POST /grids`` splits into per-shard sub-grids
  whose points route by their *point job's* key;
- failure handling — a dead shard is evicted after repeated transport
  failures and its routes re-home with zero loss;
- the executor ladder — ``TMAService(executor="shard")`` runs a
  front service whose "workers" are the cluster, producing results
  bit-identical to a single-node oracle;
- the shard rung refuses unremotable work instead of running it
  locally.
"""

import time

import pytest

from repro.service import (Gateway, ServiceClient, TMAService,
                           make_shard_service, serve_in_thread)
from repro.service.hashring import HashRing, ring_position
from repro.service.job import TMAJob
from repro.service.shard import SHARDS_ENV, ShardExecutor, ShardInfo


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cluster"))
    yield tmp_path


class Cluster:
    """N shard servers on loopback, sharing the process cache dir."""

    def __init__(self, count: int, workers: int = 1):
        self.services = {}
        self.servers = {}
        self.urls = {}
        for index in range(count):
            shard_id = f"s{index + 1}"
            service = make_shard_service(
                shard_id, workers=workers, executor="thread",
                queue_capacity=64).start()
            server, _thread = serve_in_thread(service)
            self.services[shard_id] = service
            self.servers[shard_id] = server
            self.urls[shard_id] = (
                f"http://127.0.0.1:{server.server_address[1]}")

    def spec(self) -> str:
        return ",".join(f"{shard_id}={url}"
                        for shard_id, url in sorted(self.urls.items()))

    def kill(self, shard_id: str) -> None:
        """Make the shard unreachable (connection refused)."""
        self.servers[shard_id].shutdown()
        self.servers[shard_id].server_close()

    def settle(self, timeout: float = 120.0) -> None:
        """Wait until no shard has queued or in-flight work."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            busy = any(service.scheduler.queue_depth or service.in_flight
                       for service in self.services.values())
            if not busy:
                return
            time.sleep(0.05)
        raise TimeoutError("cluster did not settle")

    def stop(self) -> None:
        for shard_id, server in self.servers.items():
            try:
                server.shutdown()
                server.server_close()
            except OSError:
                pass
        for service in self.services.values():
            service.drain()


@pytest.fixture
def cluster():
    built = Cluster(3)
    yield built
    built.stop()


def wait_status(gateway, gateway_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        payload = gateway.status(gateway_id)
        assert payload is not None
        if payload.get("state") in ("done", "failed", "quarantined"):
            return payload
        time.sleep(0.05)
    raise TimeoutError(f"{gateway_id} never finished")


# ----------------------------------------------------------------------
# Shard identity


def test_shard_healthz_reports_identity_and_ring_position(cluster):
    for shard_id, url in cluster.urls.items():
        health = ServiceClient(url).healthz()
        assert health["status"] == "ok"
        assert health["version"]
        assert health["executor"] == "thread"
        assert health["shard"]["id"] == shard_id
        assert health["shard"]["ring_position"] == ring_position(shard_id)


def test_shard_info_rejects_unsafe_ids():
    assert ShardInfo("a.b-c_9").id == "a.b-c_9"
    with pytest.raises(ValueError):
        ShardInfo("a/b")
    with pytest.raises(ValueError):
        ShardInfo("")


# ----------------------------------------------------------------------
# Gateway routing exactness


def test_gateway_routes_match_ring_assignment_exactly(cluster):
    gateway = Gateway(cluster.spec())
    payloads = [{"workload": "vvadd", "config": "rocket",
                 "scale": round(0.1 + 0.05 * i, 2)} for i in range(6)]
    receipts = [gateway.submit_payload(payload) for payload in payloads]
    for receipt in receipts:
        assert wait_status(gateway, receipt["id"])["state"] == "done"
    ring = HashRing(cluster.urls)
    expected_keys = {
        TMAJob.from_payload(payload).job_key() for payload in payloads}
    seen = {}
    for shard_id, service in cluster.services.items():
        for record in service.records():
            if record.job_key not in expected_keys:
                continue
            # Exactness: a key never appears on two shards...
            assert seen.setdefault(record.job_key, shard_id) == shard_id
            # ...and the shard it appears on is the ring owner.
            assert ring.owner(record.job_key) == shard_id
    assert set(seen) == expected_keys
    # Receipts agree with shard-side reality.
    for payload, receipt in zip(payloads, receipts):
        key = TMAJob.from_payload(payload).job_key()
        assert receipt["shard"] == seen[key]
        assert receipt["id"] == f"{seen[key]}:{receipt['id'].split(':')[1]}"


def test_gateway_duplicate_submissions_converge_on_one_shard(cluster):
    gateway = Gateway(cluster.spec())
    payload = {"workload": "median", "config": "rocket", "scale": 0.2}
    first = gateway.submit_payload(payload)
    second = gateway.submit_payload(payload)
    assert first["shard"] == second["shard"]
    assert wait_status(gateway, first["id"])["state"] == "done"
    assert wait_status(gateway, second["id"])["state"] == "done"
    key = TMAJob.from_payload(payload).job_key()
    owners = {shard_id for shard_id, service in cluster.services.items()
              if any(r.job_key == key for r in service.records())}
    assert owners == {first["shard"]}
    # One execution total: the duplicate coalesced or cache-hit.
    executed = sum(service.metrics.counter("jobs_executed")
                   for service in cluster.services.values())
    assert executed == 1


def test_gateway_unknown_job_and_status_passthrough(cluster):
    gateway = Gateway(cluster.spec())
    assert gateway.status("s1:job-999999") is None
    assert gateway.status("nope:job-1") is None
    receipt = gateway.submit_payload(
        {"workload": "towers", "config": "rocket", "scale": 0.2})
    record = wait_status(gateway, receipt["id"])
    assert record["id"] == receipt["id"]
    assert record["shard"] == receipt["shard"]
    assert record["result"]["tma"]["dominant"]


# ----------------------------------------------------------------------
# Grid fan-out


def test_gateway_grid_fans_out_by_point_job_key(cluster):
    gateway = Gateway(cluster.spec())
    payload = {"workload": "vvadd", "grid": "rocket,small-boom,large-boom",
               "vary": [], "scale": 0.2}
    receipt = gateway.submit_grid_payload(payload)
    assert receipt["points"] == 3
    deadline = time.time() + 120.0
    while time.time() < deadline:
        status = gateway.grid_status(receipt["id"])
        if status["state"] == "done":
            break
        time.sleep(0.05)
    assert status["state"] == "done"
    assert set(status["points"]) == {"rocket", "small-boom", "large-boom"}
    ring = HashRing(cluster.urls)
    template = {"workload": "vvadd", "scale": 0.2}
    for point_key, entry in status["points"].items():
        assert entry["state"] == "done"
        assert entry["result"]["tma"]["dominant"]
        job = TMAJob.from_payload(dict(template, config=point_key))
        # Fan-out placed each point exactly where a direct POST /jobs
        # of the same analysis would land.
        assert entry["shard"] == ring.owner(job.job_key())


def test_grid_points_dedup_against_direct_submissions(cluster):
    gateway = Gateway(cluster.spec())
    direct = gateway.submit_payload(
        {"workload": "vvadd", "config": "rocket", "scale": 0.2})
    wait_status(gateway, direct["id"])
    receipt = gateway.submit_grid_payload(
        {"workload": "vvadd", "grid": "rocket,small-boom", "vary": [],
         "scale": 0.2})
    deadline = time.time() + 120.0
    while time.time() < deadline:
        status = gateway.grid_status(receipt["id"])
        if status["state"] == "done":
            break
        time.sleep(0.05)
    assert status["state"] == "done"
    # The grid's rocket point landed on the same shard as the direct
    # submission (same canonical key), and was served without a second
    # execution.
    assert status["points"]["rocket"]["shard"] == direct["shard"]
    service = cluster.services[direct["shard"]]
    key = TMAJob.from_payload({"workload": "vvadd", "config": "rocket",
                               "scale": 0.2}).job_key()
    executions = service.metrics.counter("jobs_executed")
    owners_records = [r for r in service.records() if r.job_key == key]
    assert owners_records
    assert executions <= 3  # rocket ran once, not once per submission


# ----------------------------------------------------------------------
# Failure handling: eviction + re-routing, zero loss


def test_dead_shard_is_evicted_and_routes_rehome_with_zero_loss(cluster):
    gateway = Gateway(cluster.spec(), evict_threshold=2)
    payloads = [{"workload": "vvadd", "config": "rocket",
                 "scale": round(0.1 + 0.05 * i, 2)} for i in range(6)]
    receipts = [gateway.submit_payload(payload) for payload in payloads]
    cluster.settle()
    # Kill the shard that owns the first route — without ever polling,
    # so every route on it is still non-terminal gateway-side.
    victim = receipts[0]["shard"]
    cluster.kill(victim)
    results = {}
    for receipt in receipts:
        record = wait_status(gateway, receipt["id"])
        assert record["state"] == "done", f"lost {receipt['id']}"
        results[receipt["id"]] = record["result"]
    # The victim is gone from the ring and its routes re-homed.
    assert victim not in gateway.clients
    assert victim not in gateway.ring
    assert gateway.metrics.counter("shard_evictions") == 1
    assert gateway.metrics.counter("jobs_rerouted") >= 1
    # Zero loss and exactness: every result document is complete.
    for result in results.values():
        assert result["status"] == "ok"
        assert result["tma"]["dominant"]


def test_leave_drains_and_adopts_pending_manifest(cluster):
    gateway = Gateway(cluster.spec())
    receipt = gateway.submit_payload(
        {"workload": "median", "config": "rocket", "scale": 0.25})
    wait_status(gateway, receipt["id"])
    victim = receipt["shard"]
    report = gateway.leave(victim)
    assert victim not in gateway.clients
    assert report["drain"]["state"] in ("drained", "draining")
    assert victim not in report["shards"]
    # The departed shard's completed work is still servable: the route
    # re-homed and the shared store answers on the new owner.
    record = wait_status(gateway, receipt["id"])
    assert record["state"] == "done"
    assert record["shard"] != victim


def test_join_extends_the_ring_for_future_submissions(cluster, tmp_path):
    gateway = Gateway(cluster.spec())
    joiner = make_shard_service("s9", workers=1, executor="thread",
                                queue_capacity=64).start()
    server, _thread = serve_in_thread(joiner)
    try:
        url = f"http://127.0.0.1:{server.server_address[1]}"
        topology = gateway.join("s9", url)
        assert "s9" in topology["shards"]
        assert "s9" in gateway.ring
        with pytest.raises(Exception):
            gateway.join("s9", url)  # double-join is a validation error
        # A key owned by the joiner routes there now.
        ring = HashRing(dict(cluster.urls, s9=url))
        for i in range(64):
            payload = {"workload": "towers", "config": "rocket",
                       "scale": round(0.1 + 0.01 * i, 2)}
            key = TMAJob.from_payload(payload).job_key()
            if ring.owner(key) == "s9":
                receipt = gateway.submit_payload(payload)
                assert receipt["shard"] == "s9"
                assert wait_status(gateway,
                                   receipt["id"])["state"] == "done"
                break
        else:
            pytest.fail("no probe key landed on the joiner")
    finally:
        server.shutdown()
        server.server_close()
        joiner.drain()


# ----------------------------------------------------------------------
# Executor ladder: the shard rung


def test_front_service_with_shard_executor_matches_oracle(
        cluster, monkeypatch, tmp_path):
    monkeypatch.setenv(SHARDS_ENV, cluster.spec())
    front = TMAService(workers=2, executor="shard",
                       queue_capacity=16).start()
    payload = {"workload": "towers", "config": "small-boom", "scale": 0.3}
    try:
        receipt = front.submit_payload(payload)
        deadline = time.time() + 120.0
        while time.time() < deadline:
            record = front.status(receipt.record.id)
            if record["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert record["state"] == "done"
        remote_result = record["result"]
        assert front.pool.kind == "shard"
        # The work really ran on the cluster, not the front.
        assert sum(s.metrics.counter("jobs_executed")
                   for s in cluster.services.values()) == 1
    finally:
        front.drain()
    # Single-node oracle in a fresh, isolated store.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "oracle"))
    oracle = TMAService(workers=1, executor="thread").start()
    try:
        oracle_receipt = oracle.submit_payload(payload)
        deadline = time.time() + 120.0
        while time.time() < deadline:
            oracle_record = oracle.status(oracle_receipt.record.id)
            if oracle_record["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert oracle_record["state"] == "done"
        oracle_result = oracle_record["result"]
    finally:
        oracle.drain()

    def canonical(result):
        return {key: value for key, value in result.items()
                if key not in ("from_cache", "attempts", "trace_cache")}

    assert canonical(remote_result) == canonical(oracle_result)


def test_shard_executor_walks_failover_order_past_dead_owner(cluster):
    ring = HashRing(cluster.urls)
    # Find a payload whose ring owner we can kill.
    for i in range(64):
        payload = {"workload": "vvadd", "config": "rocket",
                   "scale": round(0.1 + 0.01 * i, 2)}
        key = TMAJob.from_payload(payload).job_key()
        owner = ring.owner(key)
        if owner != ring.owners(key, 2)[1]:
            break
    cluster.kill(owner)
    executor = ShardExecutor(workers=1, shards=cluster.urls,
                             job_timeout=120.0)
    try:
        record = executor.dispatch("/jobs", payload, key)
        assert record["state"] == "done"
    finally:
        executor.shutdown()


def test_shard_executor_refuses_unregistered_functions(cluster):
    executor = ShardExecutor(workers=1, shards=cluster.urls)
    try:
        with pytest.raises(RuntimeError, match="remote adapter"):
            executor.submit(sorted, [3, 1, 2])
    finally:
        executor.shutdown()


def test_shard_executor_requires_members(monkeypatch):
    monkeypatch.delenv(SHARDS_ENV, raising=False)
    with pytest.raises(ValueError, match="cluster members"):
        ShardExecutor(workers=1)


# ----------------------------------------------------------------------
# Cluster observability


def test_gateway_healthz_and_metrics_rollup(cluster):
    gateway = Gateway(cluster.spec())
    receipt = gateway.submit_payload(
        {"workload": "vvadd", "config": "rocket", "scale": 0.2})
    wait_status(gateway, receipt["id"])
    health = gateway.healthz()
    assert health["role"] == "gateway"
    assert set(health["shards"]) == set(cluster.urls)
    for shard_id, entry in health["shards"].items():
        assert entry["shard"]["id"] == shard_id
    snapshot = gateway.metrics_snapshot()
    assert snapshot["gateway"]["counters"]["routed_jobs"] == 1
    # The cluster rollup sums per-shard counters.
    assert snapshot["cluster"]["counters"]["jobs_completed"] == sum(
        s.metrics.counter("jobs_completed")
        for s in cluster.services.values())
    assert set(snapshot["shards"]) == set(cluster.urls)
