"""Streaming tier tests: event journal, SSE codec, live job streams.

Pins down the satellite guarantees: SSE event order matches the job
lifecycle (``queued`` → ``running`` → ``progress``\\* → one terminal
event), a disconnected client resumes from ``Last-Event-ID`` without
replaying — and never sees a duplicate terminal event — and the
non-streaming polling client is completely unaffected by streams
running next to it.
"""

import io
import threading

import pytest

from repro.service import (EventJournal, ServiceClient, TMAService,
                           parse_sse, serve_in_thread, sse_encode)
from repro.service.stream import (MAX_EVENTS_PER_JOB, TERMINAL_EVENTS,
                                  JobEvent, sse_keepalive)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


def make_service(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("executor", "thread")
    kwargs.setdefault("queue_capacity", 32)
    return TMAService(**kwargs)


# ----------------------------------------------------------------------
# EventJournal


def test_journal_seqs_are_per_job_and_monotonic_from_one():
    journal = EventJournal()
    assert journal.append("a", "queued").seq == 1
    assert journal.append("a", "running").seq == 2
    assert journal.append("b", "queued").seq == 1
    assert [e.seq for e in journal.events("a")] == [1, 2]
    assert journal.events("a", after=1)[0].event == "running"
    assert journal.known("a") and not journal.known("zz")


def test_journal_wait_blocks_until_append():
    journal = EventJournal()
    journal.append("a", "queued")
    got = []

    def subscriber():
        got.extend(journal.wait("a", after=1, timeout=10.0))

    thread = threading.Thread(target=subscriber)
    thread.start()
    journal.append("a", "done", {"state": "done"})
    thread.join(timeout=10.0)
    assert [e.event for e in got] == ["done"]
    assert journal.finished("a")
    # A finished stream never blocks, even with nothing new to return.
    assert journal.wait("a", after=2, timeout=60.0) == []


def test_journal_cap_sheds_progress_but_never_terminal():
    journal = EventJournal(max_events_per_job=4)
    journal.append("a", "queued")
    journal.append("a", "running")
    assert journal.append("a", "progress", {"message": "w1"}) is not None
    assert journal.append("a", "progress", {"message": "w2"}) is not None
    # Cap reached: further progress ticks are shed...
    assert journal.append("a", "progress", {"message": "w3"}) is None
    # ...but the terminal event always lands.
    assert journal.append("a", "done", {"state": "done"}) is not None
    assert journal.finished("a")
    assert MAX_EVENTS_PER_JOB >= 64  # default cap fits real lifecycles


def test_journal_discard_forgets_the_job():
    journal = EventJournal()
    journal.append("a", "queued")
    journal.discard("a")
    assert not journal.known("a")
    assert len(journal) == 0


# ----------------------------------------------------------------------
# SSE codec


def test_sse_round_trip_and_keepalive_skipping():
    frames = (sse_encode(JobEvent(seq=1, event="queued", data={"q": 1}))
              + sse_keepalive()
              + sse_encode(JobEvent(seq=2, event="done",
                                    data={"state": "done"})))
    events = list(parse_sse(io.BytesIO(frames)))
    assert [(e["id"], e["event"]) for e in events] == [(1, "queued"),
                                                       (2, "done")]
    assert events[1]["data"] == {"state": "done"}


def test_sse_parse_drops_trailing_half_frame():
    frames = (sse_encode(JobEvent(seq=1, event="queued"))
              + b"id: 2\nevent: done\n")  # no blank-line terminator
    events = list(parse_sse(io.BytesIO(frames)))
    assert [e["id"] for e in events] == [1]


# ----------------------------------------------------------------------
# Live streams over HTTP


def _start():
    service = make_service().start()
    server, _thread = serve_in_thread(service)
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    return service, server, client


def test_stream_order_matches_lifecycle_with_progress_ticks():
    service, server, client = _start()
    try:
        receipt = client.submit("vvadd", scale=0.2, config="rocket",
                                windows=3)
        events = list(client.stream(receipt["id"]))
        names = [e["event"] for e in events]
        # queued first, running before any progress, terminal last.
        assert names[0] == "queued"
        assert names[1] == "running"
        assert names[-1] == "done"
        ticks = [e for e in events if e["event"] == "progress"]
        assert ticks, "windowed job on a thread executor must tick"
        assert all(names.index("running") < names.index("progress")
                   for _ in ticks)
        # Sequence ids are strictly increasing with no gaps.
        assert [e["id"] for e in events] == list(
            range(1, len(events) + 1))
        # The terminal frame carries the whole result: no status poll
        # needed after a successful stream.
        final = events[-1]["data"]
        assert final["state"] == "done"
        assert len(final["result"]["windowed"]["windowed"]["spans"]) == 3
        assert final["result"]["windowed"]["tma"]["dominant"]
        # Lifecycle frames are tagged with the canonical routing key
        # (progress ticks are raw window messages and carry none).
        assert all(e["data"].get("job_key") for e in events
                   if e["event"] != "progress")
    finally:
        server.shutdown()
        service.drain()


def test_stream_resume_never_duplicates_terminal():
    service, server, client = _start()
    try:
        receipt = client.submit("median", scale=0.2, config="rocket")
        record = client.wait(receipt["id"], timeout=60.0)
        assert record["state"] == "done"
        # First connection: take the stream up to (and including) seq 2,
        # then "disconnect".
        first = []
        for event in client.stream(receipt["id"]):
            first.append(event)
            if event["id"] == 2:
                break
        # Reconnect with the last seen id — standard SSE resume.
        second = list(client.stream(receipt["id"], last_event_id=2))
        assert [e["id"] for e in second] == list(
            range(3, 3 + len(second)))
        replayed = {e["id"] for e in first} & {e["id"] for e in second}
        assert not replayed
        terminals = [e for e in first + second
                     if e["event"] in TERMINAL_EVENTS]
        assert len(terminals) == 1
        assert terminals[0]["event"] == "done"
    finally:
        server.shutdown()
        service.drain()


def test_stream_of_finished_job_replays_history_and_ends():
    service, server, client = _start()
    try:
        receipt = client.submit("vvadd", scale=0.2, config="rocket")
        client.wait(receipt["id"], timeout=60.0)
        events = list(client.stream(receipt["id"]))
        assert events[0]["event"] == "queued"
        assert events[-1]["event"] == "done"
    finally:
        server.shutdown()
        service.drain()


def test_stream_unknown_job_is_404():
    from repro.service import ServiceError

    service, server, client = _start()
    try:
        with pytest.raises(ServiceError) as excinfo:
            list(client.stream("job-999999"))
        assert excinfo.value.status == 404
    finally:
        server.shutdown()
        service.drain()


def test_polling_client_unaffected_by_concurrent_stream():
    """A poller and a streamer watching the same job both finish clean."""
    service, server, client = _start()
    try:
        receipt = client.submit("spmv", scale=0.2, config="rocket",
                                windows=2)
        streamed = []
        streamer = threading.Thread(
            target=lambda: streamed.extend(client.stream(receipt["id"])))
        streamer.start()
        record = client.wait(receipt["id"], timeout=120.0)
        streamer.join(timeout=60.0)
        assert not streamer.is_alive()
        assert record["state"] == "done"
        assert record["result"]["windowed"]["tma"]["dominant"]
        assert streamed[-1]["event"] == "done"
        # Poll and stream agree on the result document.
        assert streamed[-1]["data"]["result"] == record["result"]
    finally:
        server.shutdown()
        service.drain()
