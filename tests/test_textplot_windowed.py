"""Unit tests for text plotting and windowed temporal TMA."""

import pytest

from repro.tools.textplot import (hbar_chart, percent_axis, sparkline,
                                  stacked_series)
from repro.trace import windowed_tma


# ---------------------------------------------------------------------------
# textplot
# ---------------------------------------------------------------------------

def test_sparkline_scaling():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] == " "
    assert line[2] == "█"


def test_sparkline_fixed_maximum():
    relative = sparkline([1, 2], maximum=4)
    assert relative[1] != "█"          # 2/4 is mid-scale
    assert sparkline([5], maximum=4)[0] == "█"  # clamped


def test_sparkline_empty_and_zero():
    assert sparkline([]) == ""
    assert sparkline([0, 0]) == "  "


def test_hbar_chart_rows():
    chart = hbar_chart({"a": 1.0, "b": 0.5}, width=10)
    lines = chart.splitlines()
    assert len(lines) == 2
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5
    assert "1.00" in lines[0]


def test_hbar_chart_empty():
    assert hbar_chart({}) == ""


def test_stacked_series_alignment():
    text = stacked_series({"x": [0.5, 1.0], "yy": [0.0, 0.25]})
    lines = text.splitlines()
    assert len(lines) == 2
    # Labels padded to equal width: rows end at the same column.
    assert len(lines[0]) == len(lines[1])
    assert lines[0].startswith("x ")
    assert lines[1].startswith("yy ")


def test_percent_axis():
    axis = percent_axis(21, step=10)
    assert axis[0] == "|" and axis[10] == "|" and axis[20] == "|"
    assert axis[1] == "-"


# ---------------------------------------------------------------------------
# windowed temporal TMA
# ---------------------------------------------------------------------------

def synthetic_signals(cycles: int):
    # First half retires fully; second half is all recovering.
    half = cycles // 2
    return {
        "uops_retired": [0b111] * half + [0] * (cycles - half),
        "recovering": [0] * half + [1] * (cycles - half),
        "fetch_bubbles": [0] * cycles,
    }


def test_windowed_tma_splits_phases():
    signals = synthetic_signals(200)
    profiles = windowed_tma(signals, commit_width=3, window=100)
    assert len(profiles) == 2
    assert profiles[0].fractions()["retiring"] == pytest.approx(1.0)
    assert profiles[1].fractions()["bad_speculation"] == pytest.approx(1.0)


def test_windowed_tma_tail_window():
    profiles = windowed_tma(synthetic_signals(150), commit_width=3,
                            window=100)
    assert len(profiles) == 2
    assert profiles[1].cycles == 50


def test_windowed_tma_totals_match_whole_run():
    from repro.trace import temporal_tma

    signals = synthetic_signals(300)
    whole = temporal_tma(signals, commit_width=3)
    windows = windowed_tma(signals, commit_width=3, window=64)
    assert sum(w.retiring_slots for w in windows) == whole.retiring_slots
    assert sum(w.bad_spec_slots for w in windows) == whole.bad_spec_slots
    assert sum(w.total_slots for w in windows) == whole.total_slots


def test_windowed_tma_rejects_bad_window():
    with pytest.raises(ValueError):
        windowed_tma({}, commit_width=3, window=0)


def test_windowed_tma_empty_signals():
    assert windowed_tma({}, commit_width=3, window=10) == []
