"""The columnar timing engines must be bit-identical to the oracles.

``REPRO_TIMING_ENGINE=columnar`` (the default) runs the descriptor-
compiled, slab-allocated cycle loops over the trace columns;
``objects`` runs the materialized ``DynInst``/µop loops.  The only
acceptable difference is wall clock: these tests pin the full
``CoreResult`` surface (event totals, per-lane splits, cycles, instret,
cache/predictor statistics, extras) *and* the TMA level-1/level-2
classification for every registry workload on Rocket and three BOOM
sizes, plus the engine-selection knob itself and the per-run state
reset that makes core instances safely reusable.

The functional executor is pinned to ``compiled`` throughout: these
tests are about the *timing* engines and need ``ColumnarTrace`` inputs
even when the surrounding suite runs under
``REPRO_EXEC_ENGINE=interpreted`` (whose reference path produces
``DynamicTrace``).
"""

import dataclasses

import pytest

from repro.core import compute_tma
from repro.cores import LARGE_BOOM, MEDIUM_BOOM, ROCKET, SMALL_BOOM
from repro.cores.base import (TIMING_ENGINE_ENV, TIMING_ENGINES,
                              resolve_timing_engine)
from repro.cores.boom import BoomCore
from repro.isa import execute
from repro.isa.columnar import ColumnarTrace
from repro.pmu.harness import make_core
from repro.workloads import build_program, build_trace, workload_names

SCALE = 0.3

CONFIGS = [ROCKET, SMALL_BOOM, MEDIUM_BOOM, LARGE_BOOM]


def result_digest(result):
    return (
        result.events,
        result.lane_events,
        result.cycles,
        result.instret,
        dataclasses.astuple(result.l1i_stats),
        dataclasses.astuple(result.l1d_stats),
        dataclasses.astuple(result.l2_stats),
        dataclasses.astuple(result.predictor_stats),
        result.extra,
    )


# ----------------------------------------------------------------------
# bit-identity across the registry


@pytest.mark.parametrize("workload", workload_names())
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_columnar_matches_objects(workload, config):
    trace = build_trace(workload, scale=SCALE, engine="compiled")
    assert isinstance(trace, ColumnarTrace)
    objects = make_core(config).run(trace, engine="objects")
    columnar = make_core(config).run(trace, engine="columnar")
    assert result_digest(objects) == result_digest(columnar)

    tma_objects = compute_tma(objects)
    tma_columnar = compute_tma(columnar)
    assert tma_objects.level1 == tma_columnar.level1
    assert tma_objects.level2 == tma_columnar.level2


# ----------------------------------------------------------------------
# engine selection


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown timing engine"):
        resolve_timing_engine("vectorized")
    trace = build_trace("vvadd", scale=SCALE, engine="compiled")
    with pytest.raises(ValueError, match="unknown timing engine"):
        make_core(ROCKET).run(trace, engine="vectorized")


def test_env_selects_engine(monkeypatch):
    monkeypatch.setenv(TIMING_ENGINE_ENV, "objects")
    assert resolve_timing_engine() == "objects"
    # An explicit override always beats the environment.
    assert resolve_timing_engine("columnar") == "columnar"
    monkeypatch.setenv(TIMING_ENGINE_ENV, "jit")
    with pytest.raises(ValueError, match="unknown timing engine"):
        resolve_timing_engine()


def test_default_engine_is_columnar(monkeypatch):
    monkeypatch.delenv(TIMING_ENGINE_ENV, raising=False)
    assert resolve_timing_engine() == "columnar"
    assert set(TIMING_ENGINES) == {"columnar", "objects"}


@pytest.mark.parametrize("config", [ROCKET, SMALL_BOOM],
                         ids=lambda c: c.name)
def test_dynamic_trace_falls_back_to_objects(config):
    """A ``DynamicTrace`` input runs (via the object engine) either way."""
    columnar_trace = build_trace("median", scale=SCALE, engine="compiled")
    dynamic_trace = execute(build_program("median", scale=SCALE))
    assert not isinstance(dynamic_trace, ColumnarTrace)
    reference = make_core(config).run(columnar_trace, engine="objects")
    via_dynamic = make_core(config).run(dynamic_trace, engine="columnar")
    assert result_digest(via_dynamic) == result_digest(reference)


# ----------------------------------------------------------------------
# per-run state reset / instance reuse


def test_boom_run_resets_per_run_state():
    """Stale per-run state must not leak into a later ``run()``.

    The machine-clear count, the store-set training, and the store
    queue are per-run; the caches, TLBs, and predictor deliberately
    stay warm.  A core poisoned with stale per-run state must produce
    the exact result of a pristine core.
    """
    trace = build_trace("qsort", scale=SCALE, engine="compiled")
    clean = BoomCore(SMALL_BOOM).run(trace)
    poisoned = BoomCore(SMALL_BOOM)
    poisoned.machine_clears = 999
    poisoned._trained_loads.add(0x80000123)
    poisoned._stq = [object()]
    assert result_digest(poisoned.run(trace)) == result_digest(clean)


@pytest.mark.parametrize("config", [SMALL_BOOM, LARGE_BOOM],
                         ids=lambda c: c.name)
def test_reused_core_engines_stay_identical(config):
    """Back-to-back runs on one instance stay engine-independent.

    Warm cache/predictor state evolves across runs; both engines must
    see the identical evolution, so a reused objects-engine core and a
    reused columnar-engine core agree run by run.
    """
    core_objects = BoomCore(config)
    core_columnar = BoomCore(config)
    for workload in ("qsort", "median", "qsort"):
        trace = build_trace(workload, scale=SCALE, engine="compiled")
        objects = core_objects.run(trace, engine="objects")
        columnar = core_columnar.run(trace, engine="columnar")
        assert result_digest(objects) == result_digest(columnar)
