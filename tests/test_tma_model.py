"""Unit tests for the TMA models (Table II, Fig. 5)."""

import pytest

from repro.core import (BoomTmaModel, RocketTmaModel, TmaInputs,
                        compute_tma)


def boom_inputs(**events) -> TmaInputs:
    base = {"cycles": 1000}
    base.update(events)
    return TmaInputs(core="boom", workload="w", config_name="LargeBOOMV3",
                     cycles=base.pop("cycles"), commit_width=3,
                     events=base)


def test_retiring_is_retired_over_total_slots():
    inputs = boom_inputs(uops_retired=1500, instr_retired=1500)
    result = BoomTmaModel().compute(inputs)
    assert result.level1["retiring"] == pytest.approx(1500 / 3000)


def test_frontend_is_fetch_bubbles_over_slots():
    inputs = boom_inputs(fetch_bubbles=600)
    result = BoomTmaModel().compute(inputs)
    assert result.level1["frontend"] == pytest.approx(0.2)


def test_top_level_sums_to_one():
    inputs = boom_inputs(uops_retired=900, uops_issued=1100,
                         fetch_bubbles=300, recovering=50,
                         br_mispredict=20, flush=2, fence_retired=1)
    result = BoomTmaModel().compute(inputs)
    assert result.top_level_sum() == pytest.approx(1.0)


def test_bad_spec_formula_matches_table2():
    """Hand-check BadSpec against the Table II expression."""
    inputs = boom_inputs(uops_retired=900, uops_issued=1100,
                         recovering=40, br_mispredict=10, flush=5,
                         fence_retired=5)
    result = BoomTmaModel(recover_length=4).compute(inputs)
    m_tf = 5 + 10 + 5
    m_nf_r = (10 + 5) / m_tf
    expected = ((1100 - 900) * m_nf_r + (40 + 4 * 10) * 3) / 3000
    assert result.level1["bad_speculation"] == pytest.approx(expected)


def test_lower_level_badspec_split():
    inputs = boom_inputs(uops_retired=900, uops_issued=1100,
                         recovering=40, br_mispredict=10, flush=5,
                         fence_retired=5)
    result = BoomTmaModel().compute(inputs)
    lost = 200
    m_tf = 20
    assert result.level2["machine_clears"] == pytest.approx(
        lost * (5 / m_tf) / 3000)
    assert result.level2["resteering"] == pytest.approx(
        lost * (10 / m_tf) / 3000)
    assert result.level2["recovery_bubbles"] == pytest.approx(40 / 3000)


def test_cf_target_mispredicts_count_toward_bm():
    a = BoomTmaModel().compute(boom_inputs(
        uops_retired=900, uops_issued=1000, br_mispredict=10))
    b = BoomTmaModel().compute(boom_inputs(
        uops_retired=900, uops_issued=1000, br_mispredict=5,
        cf_target_mispredict=5))
    assert a.level1["bad_speculation"] == pytest.approx(
        b.level1["bad_speculation"])


def test_backend_split_mem_vs_core():
    inputs = boom_inputs(uops_retired=600, dcache_blocked=900)
    result = BoomTmaModel().compute(inputs)
    assert result.level2["mem_bound"] == pytest.approx(0.3)
    assert result.level2["core_bound"] == pytest.approx(
        result.level1["backend"] - 0.3)


def test_frontend_split_fetch_latency():
    inputs = boom_inputs(fetch_bubbles=600, icache_blocked=100)
    result = BoomTmaModel().compute(inputs)
    assert result.level2["fetch_latency"] == pytest.approx(100 * 3 / 3000)
    assert result.level2["pc_resolution"] == pytest.approx(
        0.2 - 0.1)


def test_no_flush_sources_means_zero_ratios():
    inputs = boom_inputs(uops_retired=1000, uops_issued=1000)
    result = BoomTmaModel().compute(inputs)
    assert result.level1["bad_speculation"] == 0.0
    assert result.metrics["m_tf"] == 0.0


def test_zero_cycles_rejected():
    inputs = TmaInputs(core="boom", workload="w", config_name="c",
                       cycles=0, commit_width=3)
    with pytest.raises(ValueError):
        BoomTmaModel().compute(inputs)


def test_rocket_model_uses_single_slot_per_cycle():
    inputs = TmaInputs(core="rocket", workload="w", config_name="Rocket",
                       cycles=1000, commit_width=1,
                       events={"instr_retired": 700, "instr_issued": 700,
                               "fetch_bubbles": 50, "recovering": 100,
                               "dcache_blocked": 80,
                               "icache_blocked": 20})
    result = RocketTmaModel().compute(inputs)
    assert result.level1["retiring"] == pytest.approx(0.7)
    assert result.level1["bad_speculation"] == pytest.approx(0.1)
    assert result.level1["frontend"] == pytest.approx(0.05)
    assert result.level1["backend"] == pytest.approx(0.15)
    assert result.level2["mem_bound"] == pytest.approx(0.08)
    assert result.level2["fetch_latency"] == pytest.approx(0.02)
    assert result.top_level_sum() == pytest.approx(1.0)


def test_compute_tma_dispatch_on_core_field():
    rocket = TmaInputs(core="rocket", workload="w", config_name="c",
                       cycles=10, commit_width=1,
                       events={"instr_retired": 5})
    boom = TmaInputs(core="boom", workload="w", config_name="c",
                     cycles=10, commit_width=3,
                     events={"uops_retired": 5})
    assert compute_tma(rocket).core == "rocket"
    assert compute_tma(boom).core == "boom"


def test_dominant_class():
    inputs = boom_inputs(uops_retired=300, dcache_blocked=2400)
    result = BoomTmaModel().compute(inputs)
    assert result.dominant_class() == "backend"


def test_ipc_property():
    inputs = boom_inputs(uops_retired=1500, instr_retired=1500)
    result = BoomTmaModel().compute(inputs)
    assert result.ipc == pytest.approx(1.5)


def test_metrics_exposed():
    inputs = boom_inputs(uops_retired=900, uops_issued=1000,
                         br_mispredict=8, flush=2)
    result = BoomTmaModel().compute(inputs)
    assert result.metrics["m_tf"] == 10
    assert result.metrics["m_br_mr"] == pytest.approx(0.8)
    assert result.metrics["m_fl_r"] == pytest.approx(0.2)
    assert result.metrics["lost_uops"] == 100.0
