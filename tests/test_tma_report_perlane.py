"""Unit tests for report rendering and the per-lane study helpers."""

import pytest

from repro.core import (TmaInputs, compute_tma, format_percent,
                        frontend_error_of_lane_approx,
                        frontend_point_error_of_lane_approx,
                        per_lane_rates, render_bar, render_breakdown_table,
                        render_comparison, render_result, render_table5,
                        single_lane_approximation)
from repro.cores.base import CoreResult
from repro.uarch.branch import PredictorStats
from repro.uarch.cache import CacheStats


def fake_result(lane_events=None, events=None, cycles=1000,
                commit_width=3) -> CoreResult:
    return CoreResult(
        workload="fake", config_name="LargeBOOMV3", core="boom",
        cycles=cycles, instret=events.get("instr_retired", 0)
        if events else 0,
        events=events or {}, lane_events=lane_events or {},
        commit_width=commit_width, issue_width=5,
        l1i_stats=CacheStats(), l1d_stats=CacheStats(),
        l2_stats=CacheStats(), predictor_stats=PredictorStats())


def tma_result(**events):
    base = {"cycles": 1000}
    base.update(events)
    inputs = TmaInputs(core="boom", workload="w", config_name="c",
                       cycles=base.pop("cycles"), commit_width=3,
                       events=base)
    return compute_tma(inputs)


def test_format_percent():
    assert format_percent(0.5).strip() == "50.00%"


def test_render_bar_proportions():
    bar = render_bar({"retiring": 0.5, "bad_speculation": 0.25,
                      "frontend": 0.25, "backend": 0.0}, width=20)
    assert bar.count("R") == 10
    assert bar.count("B") == 5
    assert bar.count("F") == 5
    assert bar.startswith("|") and bar.endswith("|")


def test_render_result_contains_classes():
    text = render_result(tma_result(uops_retired=1200, instr_retired=1200))
    assert "Retiring" in text
    assert "BadSpec" in text
    assert "IPC" in text


def test_render_breakdown_table_rows():
    results = [tma_result(uops_retired=900, instr_retired=900),
               tma_result(uops_retired=600, instr_retired=600)]
    table = render_breakdown_table(results, title="Fig7")
    lines = table.splitlines()
    assert lines[0] == "Fig7"
    assert len(lines) == 4  # title + header + 2 rows


def test_render_comparison_includes_delta():
    before = tma_result(uops_retired=600, instr_retired=600)
    after = tma_result(uops_retired=900, instr_retired=900)
    text = render_comparison(before, after, "before", "after")
    assert "delta" in text
    assert "+10.00%" in text


def test_per_lane_rates_normalized_by_cycles():
    result = fake_result(lane_events={"fetch_bubbles": [100, 200, 300]})
    rates = per_lane_rates(result)
    assert rates.rates["fetch_bubbles"] == [0.1, 0.2, 0.3]
    assert rates.lane_rate("fetch_bubbles", 2) == 0.3
    assert rates.lane_rate("fetch_bubbles", 9) == 0.0


def test_per_lane_rates_pads_missing_lanes():
    result = fake_result(lane_events={"uops_issued": [10]})
    rates = per_lane_rates(result, lane_counts={"uops_issued": 5})
    assert len(rates.rates["uops_issued"]) == 5


def test_single_lane_approximation_math():
    result = fake_result(
        lane_events={"fetch_bubbles": [100, 200, 300]},
        events={"fetch_bubbles": 600})
    approx = single_lane_approximation(result, "fetch_bubbles", lane=0)
    assert approx.exact_total == 600
    assert approx.approx_total == 300.0   # 3 lanes x lane0
    assert approx.relative_error == pytest.approx(-0.5)


def test_frontend_error_functions():
    result = fake_result(
        lane_events={"fetch_bubbles": [150, 200, 250]},
        events={"fetch_bubbles": 600})
    relative = frontend_error_of_lane_approx(result)
    assert relative == pytest.approx((450 - 600) / 600)
    points = frontend_point_error_of_lane_approx(result)
    assert points == pytest.approx((450 - 600) / 3000)


def test_frontend_error_zero_when_no_bubbles():
    result = fake_result(events={})
    assert frontend_error_of_lane_approx(result) == 0.0


def test_render_table5_layout():
    rows = [per_lane_rates(fake_result(
        lane_events={"fetch_bubbles": [10, 20, 30]}),
        lane_counts={"fetch_bubbles": 3})]
    text = render_table5(rows, {"fetch_bubbles": 3})
    assert "fake" in text
    assert len(text.splitlines()) == 2
