"""Unit tests for the result cache and the tma_tool pipeline."""

import pytest

from repro.cores import LARGE_BOOM, ROCKET
from repro.isa.errors import CacheIntegrityError
from repro.tools import rocket_with_l1d, run_core, run_tma
from repro.tools.cache import (cache_key, entry_path, load,
                               model_fingerprint, quarantine, store,
                               verify_entry)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


def test_fingerprint_stable_within_process():
    assert model_fingerprint() == model_fingerprint()
    assert len(model_fingerprint()) == 16


def test_cache_key_depends_on_inputs():
    a = cache_key("vvadd", 0.3, ROCKET)
    b = cache_key("vvadd", 0.4, ROCKET)
    c = cache_key("median", 0.3, ROCKET)
    d = cache_key("vvadd", 0.3, LARGE_BOOM)
    assert len({a, b, c, d}) == 4


def test_store_load_round_trip():
    result = run_core("vvadd", ROCKET, scale=0.2, use_cache=False)
    key = cache_key("vvadd", 0.2, ROCKET)
    store(key, result)
    loaded = load(key)
    assert loaded is not None
    assert loaded.cycles == result.cycles
    assert loaded.events == result.events
    assert loaded.lane_events == result.lane_events
    assert loaded.l1d_stats.misses == result.l1d_stats.misses
    assert loaded.ipc == pytest.approx(result.ipc)


def test_load_missing_returns_none():
    assert load("nonexistent-key") is None


def test_corrupt_entry_treated_as_miss(isolated_cache):
    key = cache_key("vvadd", 0.2, ROCKET)
    path = isolated_cache / f"{key}.json"
    path.write_text("{not json")
    assert load(key) is None


def test_unreadable_entry_treated_as_miss(isolated_cache):
    key = cache_key("vvadd", 0.2, ROCKET)
    path = isolated_cache / f"{key}.json"
    path.mkdir()  # load() hits IsADirectoryError, an OSError
    assert load(key) is None


def test_checksum_mismatch_detected(isolated_cache):
    result = run_core("vvadd", ROCKET, scale=0.2, use_cache=False)
    key = cache_key("vvadd", 0.2, ROCKET)
    store(key, result)
    path = entry_path(key)
    text = path.read_text()
    assert "__sha256__" in text
    path.write_text(text.replace(str(result.cycles),
                                 str(result.cycles + 1), 1))
    with pytest.raises(CacheIntegrityError) as excinfo:
        verify_entry(key)
    assert excinfo.value.invariant == "cache-checksum"
    assert load(key) is None  # lenient reader treats damage as a miss


def test_verify_and_quarantine_lifecycle(isolated_cache):
    key = cache_key("median", 0.2, ROCKET)
    assert verify_entry(key) is False      # missing
    assert quarantine(key) is False        # nothing to remove
    result = run_core("median", ROCKET, scale=0.2, use_cache=False)
    store(key, result)
    assert verify_entry(key) is True       # intact
    assert quarantine(key) is True
    assert not entry_path(key).exists()


def test_store_leaves_no_tmp_files(isolated_cache):
    result = run_core("vvadd", ROCKET, scale=0.2, use_cache=False)
    store(cache_key("vvadd", 0.2, ROCKET), result)
    leftovers = [p for p in isolated_cache.iterdir()
                 if p.suffix == ".tmp"]
    assert leftovers == []


def test_run_core_uses_cache(isolated_cache):
    first = run_core("median", ROCKET, scale=0.2)
    assert (isolated_cache / f"{cache_key('median', 0.2, ROCKET)}.json"
            ).exists()
    second = run_core("median", ROCKET, scale=0.2)
    assert second.cycles == first.cycles


def test_run_core_determinism():
    a = run_core("median", ROCKET, scale=0.2, use_cache=False)
    b = run_core("median", ROCKET, scale=0.2, use_cache=False)
    assert a.cycles == b.cycles
    assert a.events == b.events


def test_run_tma_end_to_end():
    result = run_tma("vvadd", LARGE_BOOM, scale=0.2)
    assert result.core == "boom"
    assert result.top_level_sum() == pytest.approx(1.0)
    assert 0 <= result.level1["retiring"] <= 1


def test_rocket_with_l1d_builds_distinct_config():
    small = rocket_with_l1d(16)
    assert small.l1d.size_bytes == 16 * 1024
    assert small.name != ROCKET.name
    assert cache_key("vvadd", 0.2, small) != cache_key("vvadd", 0.2, ROCKET)
