"""Unit tests for the result cache and the tma_tool pipeline."""

import pytest

import os

from repro.cores import LARGE_BOOM, ROCKET
from repro.isa.errors import CacheIntegrityError
from repro.tools import rocket_with_l1d, run_core, run_tma
from repro.tools.cache import (cache_dir, cache_key, cache_limit_bytes,
                               cache_limit_entries, entry_path, load,
                               model_fingerprint, prune, quarantine, store,
                               usage, verify_entry)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


def test_fingerprint_stable_within_process():
    assert model_fingerprint() == model_fingerprint()
    assert len(model_fingerprint()) == 16


def test_cache_key_depends_on_inputs():
    a = cache_key("vvadd", 0.3, ROCKET)
    b = cache_key("vvadd", 0.4, ROCKET)
    c = cache_key("median", 0.3, ROCKET)
    d = cache_key("vvadd", 0.3, LARGE_BOOM)
    assert len({a, b, c, d}) == 4


def test_store_load_round_trip():
    result = run_core("vvadd", ROCKET, scale=0.2, use_cache=False)
    key = cache_key("vvadd", 0.2, ROCKET)
    store(key, result)
    loaded = load(key)
    assert loaded is not None
    assert loaded.cycles == result.cycles
    assert loaded.events == result.events
    assert loaded.lane_events == result.lane_events
    assert loaded.l1d_stats.misses == result.l1d_stats.misses
    assert loaded.ipc == pytest.approx(result.ipc)


def test_load_missing_returns_none():
    assert load("nonexistent-key") is None


def test_corrupt_entry_treated_as_miss(isolated_cache):
    key = cache_key("vvadd", 0.2, ROCKET)
    path = isolated_cache / f"{key}.json"
    path.write_text("{not json")
    assert load(key) is None


def test_unreadable_entry_treated_as_miss(isolated_cache):
    key = cache_key("vvadd", 0.2, ROCKET)
    path = isolated_cache / f"{key}.json"
    path.mkdir()  # load() hits IsADirectoryError, an OSError
    assert load(key) is None


def test_checksum_mismatch_detected(isolated_cache):
    result = run_core("vvadd", ROCKET, scale=0.2, use_cache=False)
    key = cache_key("vvadd", 0.2, ROCKET)
    store(key, result)
    path = entry_path(key)
    text = path.read_text()
    assert "__sha256__" in text
    path.write_text(text.replace(str(result.cycles),
                                 str(result.cycles + 1), 1))
    with pytest.raises(CacheIntegrityError) as excinfo:
        verify_entry(key)
    assert excinfo.value.invariant == "cache-checksum"
    assert load(key) is None  # lenient reader treats damage as a miss


def test_verify_and_quarantine_lifecycle(isolated_cache):
    key = cache_key("median", 0.2, ROCKET)
    assert verify_entry(key) is False      # missing
    assert quarantine(key) is False        # nothing to remove
    result = run_core("median", ROCKET, scale=0.2, use_cache=False)
    store(key, result)
    assert verify_entry(key) is True       # intact
    assert quarantine(key) is True
    assert not entry_path(key).exists()


def test_store_leaves_no_tmp_files(isolated_cache):
    result = run_core("vvadd", ROCKET, scale=0.2, use_cache=False)
    store(cache_key("vvadd", 0.2, ROCKET), result)
    leftovers = [p for p in isolated_cache.iterdir()
                 if p.suffix == ".tmp"]
    assert leftovers == []


def test_run_core_uses_cache(isolated_cache):
    first = run_core("median", ROCKET, scale=0.2)
    assert (isolated_cache / f"{cache_key('median', 0.2, ROCKET)}.json"
            ).exists()
    second = run_core("median", ROCKET, scale=0.2)
    assert second.cycles == first.cycles


def test_run_core_determinism():
    a = run_core("median", ROCKET, scale=0.2, use_cache=False)
    b = run_core("median", ROCKET, scale=0.2, use_cache=False)
    assert a.cycles == b.cycles
    assert a.events == b.events


def test_run_tma_end_to_end():
    result = run_tma("vvadd", LARGE_BOOM, scale=0.2)
    assert result.core == "boom"
    assert result.top_level_sum() == pytest.approx(1.0)
    assert 0 <= result.level1["retiring"] <= 1


def test_rocket_with_l1d_builds_distinct_config():
    small = rocket_with_l1d(16)
    assert small.l1d.size_bytes == 16 * 1024
    assert small.name != ROCKET.name
    assert cache_key("vvadd", 0.2, small) != cache_key("vvadd", 0.2, ROCKET)


# ----------------------------------------------------------------------
# Environment-driven configuration


def test_cache_dir_honors_env(isolated_cache, monkeypatch):
    assert cache_dir() == isolated_cache
    monkeypatch.setenv("REPRO_CACHE_DIR", str(isolated_cache / "nested"))
    assert cache_dir() == isolated_cache / "nested"


def test_cache_limits_parse_env(monkeypatch):
    assert cache_limit_bytes() is None
    assert cache_limit_entries() is None
    monkeypatch.setenv("REPRO_CACHE_LIMIT_BYTES", "4096")
    monkeypatch.setenv("REPRO_CACHE_LIMIT_ENTRIES", "10")
    assert cache_limit_bytes() == 4096
    assert cache_limit_entries() == 10
    monkeypatch.setenv("REPRO_CACHE_LIMIT_BYTES", "not-a-number")
    assert cache_limit_bytes() is None


# ----------------------------------------------------------------------
# Size accounting and LRU eviction


def _fill_cache(scales, workload="vvadd"):
    keys = []
    for scale in scales:
        result = run_core(workload, ROCKET, scale=scale, use_cache=False)
        key = cache_key(workload, scale, ROCKET)
        store(key, result)
        keys.append(key)
    return keys


def test_usage_counts_entries_and_bytes(isolated_cache):
    assert usage().entries == 0
    keys = _fill_cache([0.1, 0.2])
    report = usage()
    assert report.entries == 2
    assert report.total_bytes == sum(
        entry_path(k).stat().st_size for k in keys)
    assert not report.over_limit  # no limits set
    assert "entries: 2" in report.render()


def test_prune_noop_without_limits(isolated_cache):
    _fill_cache([0.1, 0.2])
    assert prune() == []
    assert usage().entries == 2


def test_prune_evicts_oldest_first(isolated_cache):
    keys = _fill_cache([0.1, 0.15, 0.2])
    for age, key in zip((300, 200, 100), keys):
        path = entry_path(key)
        stamp = path.stat().st_mtime - age
        os.utime(path, (stamp, stamp))
    evicted = prune(max_entries=1)
    assert evicted == keys[:2]  # oldest two gone, newest survives
    assert load(keys[2]) is not None


def test_prune_respects_keep(isolated_cache):
    keys = _fill_cache([0.1, 0.15])
    old = entry_path(keys[0])
    stamp = old.stat().st_mtime - 500
    os.utime(old, (stamp, stamp))
    evicted = prune(max_entries=1, keep=(keys[0],))
    assert evicted == [keys[1]]
    assert entry_path(keys[0]).exists()


def test_load_touch_makes_eviction_lru(isolated_cache):
    keys = _fill_cache([0.1, 0.15])
    # Back-date both, then touch the first via a cache hit.
    for key in keys:
        path = entry_path(key)
        stamp = path.stat().st_mtime - 500
        os.utime(path, (stamp, stamp))
    assert load(keys[0]) is not None  # refreshes mtime
    evicted = prune(max_entries=1)
    assert evicted == [keys[1]]  # the un-touched entry goes first


def test_store_enforces_env_entry_limit(isolated_cache, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_LIMIT_ENTRIES", "2")
    keys = _fill_cache([0.1, 0.15, 0.2, 0.25])
    assert usage().entries <= 2
    # The most recent write always survives its own enforcement pass.
    assert entry_path(keys[-1]).exists()


def test_store_enforces_env_byte_limit(isolated_cache, monkeypatch):
    keys = _fill_cache([0.1])
    entry_bytes = entry_path(keys[0]).stat().st_size
    monkeypatch.setenv("REPRO_CACHE_LIMIT_BYTES", str(int(entry_bytes * 1.5)))
    _fill_cache([0.15, 0.2])
    assert usage().total_bytes <= int(entry_bytes * 1.5)
    assert usage().entries == 1
