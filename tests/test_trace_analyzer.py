"""Unit tests for the temporal-TMA analyzer (§IV-C, §V-B)."""

import pytest

from repro.trace import (analyze_overlap, check_fetch_bubble_formula,
                         find_first, length_cdf, modal_length,
                         recovery_sequences, render_raster, temporal_tma,
                         validate_against_counters)
from repro.trace.analyzer import _padded_activity


def test_recovery_sequences_extraction():
    recovering = [0, 1, 1, 1, 0, 0, 1, 1, 0, 1]
    sequences = recovery_sequences(recovering)
    assert [(s.start, s.length) for s in sequences] == [
        (1, 3), (6, 2), (9, 1)]
    assert sequences[0].end == 4


def test_recovery_sequences_empty():
    assert recovery_sequences([0, 0, 0]) == []
    assert recovery_sequences([]) == []


def test_length_cdf_monotone_and_complete():
    points = length_cdf([4, 4, 4, 2, 9])
    lengths = [p[0] for p in points]
    fractions = [p[1] for p in points]
    assert lengths == sorted(lengths)
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)
    assert dict(points)[4] == pytest.approx(4 / 5)


def test_modal_length_prefers_most_common():
    assert modal_length([4, 4, 4, 30, 2]) == 4
    assert modal_length([]) == 0


def test_temporal_tma_classification_priorities():
    signals = {
        "uops_retired": [0b11, 0b000, 0b001, 0b111],
        "recovering":   [0,    1,    0,    0],
        "fetch_bubbles": [0b001, 0b111, 0b010, 0b000],
    }
    result = temporal_tma(signals, commit_width=3)
    # cycle 0: 2 retire, 1 bubble; cycle 1: 3 badspec (recovering);
    # cycle 2: 1 retire, 1 bubble, 1 backend; cycle 3: 3 retire.
    assert result.retiring_slots == 6
    assert result.bad_spec_slots == 3
    assert result.frontend_slots == 2
    assert result.backend_slots == 1
    assert result.total_slots == 12
    assert sum(result.fractions().values()) == pytest.approx(1.0)


def test_validate_against_counters_deltas():
    signals = {"uops_retired": [0b111] * 10, "recovering": [0] * 10,
               "fetch_bubbles": [0] * 10}
    temporal = temporal_tma(signals, commit_width=3)
    deltas = validate_against_counters(
        temporal, {"retiring": 0.9, "bad_speculation": 0.0,
                   "frontend": 0.0, "backend": 0.1})
    assert deltas["retiring"] == pytest.approx(0.1)
    assert deltas["backend"] == pytest.approx(0.1)


def test_padded_activity_window():
    series = [0, 0, 0, 1, 0, 0, 0, 0]
    active = _padded_activity(series, pad=2)
    assert active == [False, True, True, True, True, True, False, False]


def test_overlap_zero_when_windows_disjoint():
    n = 300
    signals = {
        "icache_miss": [1 if c == 10 else 0 for c in range(n)],
        "icache_blocked": [0] * n,
        "recovering": [1 if 200 <= c < 204 else 0 for c in range(n)],
        "fetch_bubbles": [0] * n,
        "uops_retired": [0b111] * n,
    }
    report = analyze_overlap(signals, commit_width=3, window_pad=50)
    assert report.overlap_slots == 0
    assert report.overlap_fraction == 0.0


def test_overlap_detects_adjacent_windows():
    n = 200
    signals = {
        "icache_miss": [1 if c == 100 else 0 for c in range(n)],
        "icache_blocked": [0] * n,
        "recovering": [1 if 110 <= c < 114 else 0 for c in range(n)],
        "fetch_bubbles": [0b001 if 105 <= c < 110 else 0
                          for c in range(n)],
        "uops_retired": [0] * n,
    }
    report = analyze_overlap(signals, commit_width=3, window_pad=50)
    # 5 ambiguous bubble slots + 4 recovering cycles * W_C
    assert report.overlap_slots == 5 + 12
    assert report.overlap_fraction > 0
    assert "Overlap" in report.render()


def test_overlap_perturbation_math():
    n = 100
    signals = {
        "icache_miss": [1] + [0] * (n - 1),
        "icache_blocked": [0] * n,
        "recovering": [0, 1, 1, 1] + [0] * (n - 4),
        "fetch_bubbles": [0] * n,
        # no retires while recovering, so Bad Speculation is non-zero
        "uops_retired": [0, 0, 0, 0] + [0b111] * (n - 4),
    }
    report = analyze_overlap(signals, commit_width=3, window_pad=50)
    assert report.bad_spec_perturbation == pytest.approx(
        report.overlap_fraction / report.bad_spec_fraction)


def test_fetch_bubble_formula_checker():
    good = {
        "fetch_bubbles": [1, 0, 0, 0],
        "recovering":    [0, 1, 0, 0],
        "ibuf_valid":    [0, 0, 1, 0],
        "ibuf_ready":    [1, 1, 1, 0],
    }
    assert check_fetch_bubble_formula(good) == 0
    bad = dict(good)
    bad["fetch_bubbles"] = [0, 0, 0, 0]   # cycle 0 should be a bubble
    assert check_fetch_bubble_formula(bad) == 1


def test_render_raster_shape():
    signals = {"x": [1, 0, 1, 0], "y": [0, 0, 1, 1]}
    text = render_raster(signals, ["x", "y"], 0, 4)
    lines = text.splitlines()
    assert len(lines) == 3
    assert "*.*." in lines[1]
    assert "..**" in lines[2]


def test_find_first():
    signals = {"x": [0, 0, 5, 0, 1]}
    assert find_first(signals, "x") == 2
    assert find_first(signals, "x", after=3) == 4
    assert find_first(signals, "x", after=5) is None
    assert find_first(signals, "missing") is None
