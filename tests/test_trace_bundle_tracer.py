"""Unit + property tests for trace bundles and the binary bridge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (CycleTracer, DmaTraceReader, TraceBridge,
                         TraceBundle, TraceField, boom_tma_bundle,
                         rocket_frontend_bundle)


def small_bundle() -> TraceBundle:
    return TraceBundle([TraceField("a"), TraceField("b", 3),
                        TraceField("c", 2)], name="small")


def test_bundle_layout_offsets():
    bundle = small_bundle()
    assert bundle.offset_of("a") == (0, 1)
    assert bundle.offset_of("b") == (1, 3)
    assert bundle.offset_of("c") == (4, 2)
    assert bundle.bits_per_cycle == 6
    assert bundle.bytes_per_cycle == 1


def test_bundle_pack_unpack():
    bundle = small_bundle()
    signals = {"a": 1, "b": 0b101, "c": 0b10}
    record = bundle.pack(signals)
    assert bundle.unpack(record) == signals


def test_pack_masks_out_of_range_lanes():
    bundle = small_bundle()
    record = bundle.pack({"b": 0b11111})
    assert bundle.unpack(record)["b"] == 0b111


def test_bundle_rejects_duplicates_and_empty():
    with pytest.raises(ValueError):
        TraceBundle([TraceField("x"), TraceField("x")])
    with pytest.raises(ValueError):
        TraceBundle([])
    with pytest.raises(ValueError):
        TraceField("bad", 0)


def test_default_bundles_have_expected_signals():
    frontend = rocket_frontend_bundle()
    for name in ("icache_miss", "ibuf_valid", "ibuf_ready",
                 "recovering", "fetch_bubbles"):
        assert name in frontend
    boom = boom_tma_bundle(3, 5)
    assert boom.offset_of("uops_issued")[1] == 5
    assert boom.offset_of("uops_retired")[1] == 3


def test_tracer_records_and_extracts_series():
    bundle = small_bundle()
    tracer = CycleTracer(bundle)
    tracer.on_cycle(0, {"a": 1})
    tracer.on_cycle(1, {"b": 0b110})
    assert len(tracer) == 2
    assert tracer.signal("a") == [1, 0]
    assert tracer.signal("b") == [0, 0b110]


def test_tracer_start_and_max_cycles():
    bundle = small_bundle()
    tracer = CycleTracer(bundle, start_cycle=2, max_cycles=3)
    for cycle in range(10):
        tracer.on_cycle(cycle, {"a": 1})
    assert len(tracer) == 3
    assert tracer.first_cycle == 2


def test_bridge_roundtrip():
    bundle = small_bundle()
    tracer = CycleTracer(bundle)
    for cycle in range(100):
        tracer.on_cycle(cycle, {"a": cycle & 1, "b": cycle & 7,
                                "c": (cycle >> 1) & 3})
    blob = TraceBridge(bundle, chunk_cycles=16).encode(tracer)
    reader = DmaTraceReader(blob)
    first, records = reader.read_all()
    assert first == 0
    assert records == tracer.records
    series = DmaTraceReader(blob).signals()
    assert series["b"] == tracer.signal("b")


def test_bridge_chunking():
    bundle = small_bundle()
    tracer = CycleTracer(bundle)
    for cycle in range(50):
        tracer.on_cycle(cycle, {"a": 1})
    blob = TraceBridge(bundle, chunk_cycles=20).encode(tracer)
    chunks = list(DmaTraceReader(blob).chunks())
    assert [len(r) for _, r in chunks] == [20, 20, 10]
    assert [first for first, _ in chunks] == [0, 20, 40]


def test_reader_rejects_bad_magic():
    with pytest.raises(ValueError):
        DmaTraceReader(b"XXXX" + b"\x00" * 16)


def test_reader_rejects_truncated_chunk():
    bundle = small_bundle()
    tracer = CycleTracer(bundle)
    tracer.on_cycle(0, {"a": 1})
    blob = TraceBridge(bundle).encode(tracer)
    with pytest.raises(ValueError):
        list(DmaTraceReader(blob[:-1]).chunks())


def test_decoded_bundle_matches_source_layout():
    bundle = boom_tma_bundle(3, 5)
    tracer = CycleTracer(bundle)
    tracer.on_cycle(0, {"uops_issued": 0b10101})
    reader = DmaTraceReader(TraceBridge(bundle).encode(tracer))
    assert reader.bundle.offset_of("uops_issued") \
        == bundle.offset_of("uops_issued")


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 7), st.integers(0, 3)),
    min_size=1, max_size=200))
def test_property_bridge_roundtrip_any_stream(cycles):
    bundle = small_bundle()
    tracer = CycleTracer(bundle)
    for index, (a, b, c) in enumerate(cycles):
        tracer.on_cycle(index, {"a": a, "b": b, "c": c})
    blob = TraceBridge(bundle, chunk_cycles=7).encode(tracer)
    _, records = DmaTraceReader(blob).read_all()
    assert records == tracer.records


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(st.sampled_from(["a", "b", "c"]),
                       st.integers(0, 7), max_size=3))
def test_property_pack_unpack_inverse(signals):
    bundle = small_bundle()
    unpacked = bundle.unpack(bundle.pack(signals))
    for name in ("a", "b", "c"):
        _, width = bundle.offset_of(name)
        expected = signals.get(name, 0) & ((1 << width) - 1)
        assert unpacked[name] == expected
