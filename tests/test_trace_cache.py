"""Trace memoization tiers: hits, eviction, isolation, engine selection."""

import pytest

from repro.cores import config_by_name
from repro.isa import ColumnarTrace, DynamicTrace
from repro.reliability.runner import ResilientRunner
from repro.workloads import build_trace, clear_caches, trace_cache


@pytest.fixture(autouse=True)
def isolated_trace_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    # These tests exercise the memoizing compiled engine specifically;
    # pin it so an outer REPRO_EXEC_ENGINE=interpreted (the CI oracle
    # job) doesn't bypass the machinery under test.
    monkeypatch.setenv("REPRO_EXEC_ENGINE", "compiled")
    clear_caches()
    yield tmp_path
    clear_caches()


def test_miss_then_memory_hit_then_disk_hit():
    first = build_trace("vvadd")
    assert isinstance(first, ColumnarTrace)
    assert trace_cache.stats() == {
        "mem_hits": 0, "disk_hits": 0, "misses": 1, "disk_corrupt": 0}

    assert build_trace("vvadd") is first
    assert trace_cache.stats()["mem_hits"] == 1

    trace_cache.clear_memory()  # simulate a fresh worker process
    reloaded = build_trace("vvadd")
    assert trace_cache.stats()["disk_hits"] == 1
    assert len(reloaded) == len(first)
    assert reloaded.exit_code == first.exit_code


def test_warm_hit_rate_exceeds_acceptance_bar():
    workloads = ["vvadd", "median", "towers"]
    for name in workloads:  # cold
        build_trace(name)
    before = trace_cache.stats()
    for _ in range(3):  # warm re-runs
        for name in workloads:
            build_trace(name)
    warm = trace_cache.stats_delta(before)
    assert trace_cache.hit_rate(warm) >= 0.9
    assert warm["misses"] == 0


def test_scale_is_part_of_the_key():
    small = build_trace("vvadd", scale=0.5)
    large = build_trace("vvadd", scale=2.0)
    assert len(small) != len(large)
    assert trace_cache.stats()["misses"] == 2
    assert (trace_cache.entry_path("vvadd", 0.5)
            != trace_cache.entry_path("vvadd", 2.0))


def test_disk_tier_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    build_trace("vvadd")
    assert not trace_cache.trace_dir().exists()
    trace_cache.clear_memory()
    build_trace("vvadd")  # no disk tier: cold again
    assert trace_cache.stats()["misses"] == 1
    assert trace_cache.stats()["disk_hits"] == 0


def test_memory_tier_is_bounded(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE_MEM", "1")
    build_trace("vvadd")
    build_trace("median")  # evicts vvadd from the memory tier
    before = trace_cache.stats()
    build_trace("vvadd")
    delta = trace_cache.stats_delta(before)
    assert delta["mem_hits"] == 0
    assert delta["disk_hits"] == 1  # disk tier still serves it


def test_disk_tier_is_bounded(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE_ENTRIES", "2")
    for name in ("vvadd", "median", "towers", "multiply"):
        build_trace(name)
    assert len(list(trace_cache.trace_dir().glob("*.ctrc"))) == 2


def test_corrupt_disk_entry_is_a_miss_and_removed():
    build_trace("vvadd")
    path = trace_cache.entry_path("vvadd", 1.0)
    assert path.exists()
    path.write_bytes(b"garbage")
    trace_cache.clear_memory()
    trace = build_trace("vvadd")  # re-executes instead of crashing
    assert trace.exit_code is not None
    assert trace_cache.stats() == {
        "mem_hits": 0, "disk_hits": 0, "misses": 1, "disk_corrupt": 1}
    assert not path.exists() or path.read_bytes() != b"garbage"


def test_interpreted_engine_bypasses_memoization(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_ENGINE", "interpreted")
    trace = build_trace("vvadd")
    assert isinstance(trace, DynamicTrace)
    assert trace_cache.stats()["misses"] == 0
    assert not trace_cache.trace_dir().exists()


def test_engine_argument_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_ENGINE", "interpreted")
    assert isinstance(build_trace("vvadd", engine="compiled"), ColumnarTrace)
    with pytest.raises(ValueError, match="unknown execution engine"):
        build_trace("vvadd", engine="jit")


def test_engines_agree_on_exit_code():
    compiled = build_trace("mergesort", engine="compiled")
    interpreted = build_trace("mergesort", engine="interpreted")
    assert compiled.exit_code == interpreted.exit_code
    assert len(compiled) == len(interpreted.instructions)


def test_runner_outcome_carries_cache_delta():
    runner = ResilientRunner(use_cache=False)
    config = config_by_name("rocket")
    cold = runner.run_one("vvadd", config)
    assert cold.ok
    assert cold.trace_cache["misses"] == 1
    warm = runner.run_one("vvadd", config_by_name("small-boom"))
    assert warm.trace_cache["misses"] == 0
    assert warm.trace_cache["mem_hits"] >= 1


def test_fingerprint_change_invalidates_key(monkeypatch):
    key_before = trace_cache.trace_key("vvadd", 1.0)
    monkeypatch.setattr(trace_cache, "_fingerprint", "deadbeef00000000")
    assert trace_cache.trace_key("vvadd", 1.0) != key_before
