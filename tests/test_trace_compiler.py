"""Compiled-vs-interpreted executor equivalence and load-time validation.

The closure-compiled engine must be observably indistinguishable from
the interpreted reference oracle: every committed dynamic instruction
bit-identical, every halt reason and exit code equal, and every error
raised with the same message — only faster.
"""

import pytest

from repro.isa import (CompileError, ExecutionError, assemble,
                       compile_program, execute, execute_compiled)
from repro.isa.instructions import OPCODES, OperandFormat, OpSpec
from repro.workloads import build_program, workload_names

DYN_FIELDS = (
    "index", "pc", "cls", "dest", "srcs", "latency", "next_pc",
    "mnemonic", "mem_addr", "mem_width", "is_load", "is_store",
    "is_branch", "taken", "is_fence", "csr", "csr_write",
    "is_mem", "is_control_flow",
)


def assert_traces_identical(interpreted, compiled):
    assert len(interpreted) == len(compiled)
    assert interpreted.exit_code == compiled.exit_code
    assert interpreted.halt_reason == compiled.halt_reason
    assert list(interpreted.final_int_regs) == list(compiled.final_int_regs)
    assert interpreted.instret == compiled.instret
    for a, b in zip(interpreted, compiled):
        for field in DYN_FIELDS:
            assert getattr(a, field) == getattr(b, field), (
                f"{field} differs at index {a.index} ({a.mnemonic})")


@pytest.mark.parametrize("name", workload_names())
def test_bit_identical_across_workload_registry(name):
    program = build_program(name)
    assert_traces_identical(execute(program), execute_compiled(program))


def test_compiled_trace_metadata_matches():
    program = assemble("""
    _start:
        li a0, 7
        li a7, 93
        ecall
    """)
    trace = execute_compiled(program)
    assert trace.exit_code == 7
    assert trace.halt_reason == "ecall"
    assert trace.instret == len(trace)


def test_halt_reason_ebreak_and_fell_off_text():
    ebreak = assemble("_start:\n    ebreak\n")
    assert_traces_identical(execute(ebreak), execute_compiled(ebreak))
    assert execute_compiled(ebreak).halt_reason == "ebreak"

    fall = assemble("_start:\n    addi a0, a0, 1\n")
    assert_traces_identical(execute(fall), execute_compiled(fall))
    assert execute_compiled(fall).halt_reason == "fell-off-text"


def test_instruction_budget_message_parity():
    program = assemble("""
    _start:
        j _start
    """, name="spin")
    with pytest.raises(ExecutionError) as interpreted:
        execute(program, max_instructions=100)
    with pytest.raises(ExecutionError) as compiled:
        execute_compiled(program, max_instructions=100)
    assert str(compiled.value) == str(interpreted.value)


# ----------------------------------------------------------------------
# Load-time validation: bad programs fail at compile_program(), not
# mid-run (the interpreter only notices when dispatch reaches them).


def _program_with_bad_mnemonic(mnemonic):
    program = assemble("""
    _start:
        li a0, 1
        li a7, 93
        ecall
    """, name="bad")
    # Instruction() refuses unknown mnemonics, so corrupt one in place —
    # exactly what a buggy program transform would produce.
    program.instructions[0].mnemonic = mnemonic
    return program


def test_unknown_mnemonic_fails_at_compile_time():
    program = _program_with_bad_mnemonic("bogus.op")
    with pytest.raises(CompileError, match="unknown mnemonic.*bogus.op"):
        compile_program(program, cache=False)


def test_missing_semantic_handler_fails_at_compile_time(monkeypatch):
    # A mnemonic with a spec but no semantic handler must also fail at
    # load: the dispatch tables, not just OPCODES, are validated.
    monkeypatch.setitem(
        OPCODES, "fake.alu",
        OpSpec("fake.alu", OPCODES["add"].cls, OperandFormat.R, 1,
               writes_rd=True))
    program = _program_with_bad_mnemonic("fake.alu")
    with pytest.raises(CompileError, match="no ALU semantic handler"):
        compile_program(program, cache=False)


def test_validation_is_eager_not_lazy():
    # The bad instruction sits on a never-taken path; compilation must
    # reject it anyway, while the interpreter happily runs the program.
    program = assemble("""
    _start:
        j _exit
        li t0, 99
    _exit:
        li a0, 0
        li a7, 93
        ecall
    """, name="dead-code")
    program.instructions[1].mnemonic = "bogus.op"
    assert execute(program).exit_code == 0  # interpreter never notices
    with pytest.raises(CompileError):
        compile_program(program, cache=False)


def test_compile_cache_reused_per_program():
    program = build_program("vvadd")
    assert compile_program(program) is compile_program(program)
