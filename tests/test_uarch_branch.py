"""Unit tests for the branch-prediction substrates."""

from repro.uarch.branch import (BHT, BTB, BoomBranchPredictor,
                                ReturnAddressStack, RocketBranchPredictor,
                                TagePredictor)


def test_bht_counter_saturation():
    bht = BHT(16, init=1)
    pc = 0x80000000
    assert not bht.predict(pc)       # weakly not-taken
    bht.update(pc, True)
    assert bht.predict(pc)           # crossed the threshold
    for _ in range(5):
        bht.update(pc, True)
    bht.update(pc, False)
    assert bht.predict(pc)           # saturated taken survives one NT


def test_bht_aliasing_by_index():
    bht = BHT(4)
    bht.update(0x0, True)
    bht.update(0x0, True)
    # pc 16 bytes later -> different index; pc 4*4*4 later -> aliases
    assert bht.predict(0x0)
    assert not bht.predict(0x4)


def test_btb_lru_replacement():
    btb = BTB(2)
    btb.insert(0x100, 0x200)
    btb.insert(0x104, 0x300)
    btb.lookup(0x100)            # refresh
    btb.insert(0x108, 0x400)     # evicts 0x104
    assert btb.lookup(0x100) == 0x200
    assert btb.lookup(0x104) is None


def test_ras_push_pop_order():
    ras = ReturnAddressStack(depth=4)
    ras.push(0x10)
    ras.push(0x20)
    assert ras.pop() == 0x20
    assert ras.pop() == 0x10
    assert ras.pop() is None


def test_ras_depth_overflow_drops_oldest():
    ras = ReturnAddressStack(depth=2)
    ras.push(1)
    ras.push(2)
    ras.push(3)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None


def test_rocket_btb_miss_predicts_not_taken():
    """The CS2 mechanism: a cold BTB forces fall-through prediction."""
    predictor = RocketBranchPredictor(btb_entries=4)
    prediction = predictor.predict_branch(0x1000)
    assert not prediction.taken and not prediction.btb_hit


def test_rocket_learns_taken_loop_branch():
    predictor = RocketBranchPredictor()
    pc, target = 0x1000, 0x800
    for _ in range(4):
        prediction = predictor.predict_branch(pc)
        predictor.resolve_branch(pc, True, target, prediction)
    prediction = predictor.predict_branch(pc)
    assert prediction.taken and prediction.target == target


def test_rocket_btb_thrash_never_learns_long_chain():
    """256 taken branches through a 28-entry BTB stay mispredicted."""
    predictor = RocketBranchPredictor(btb_entries=28)
    pcs = [0x1000 + 12 * i for i in range(256)]
    mispredicts = 0
    for _ in range(3):
        for pc in pcs:
            prediction = predictor.predict_branch(pc)
            if predictor.resolve_branch(pc, True, pc + 8, prediction):
                mispredicts += 1
    assert mispredicts == 3 * 256


def test_rocket_indirect_uses_ras_for_returns():
    predictor = RocketBranchPredictor()
    predictor.ras.push(0xCAFE)
    assert predictor.predict_indirect(0x1000, is_return=True) == 0xCAFE


def test_tage_bimodal_initializes_weakly_taken():
    """The BOOM-side CS2 mechanism: cold prediction is taken."""
    tage = TagePredictor(bimodal_init=2)
    taken, provider = tage.predict(0x1234)
    assert taken and provider == "bimodal"


def test_tage_learns_alternating_pattern():
    """A period-2 pattern defeats bimodal but not tagged history."""
    tage = TagePredictor()
    pc = 0x4000
    outcome = True
    mispredicts_late = 0
    for i in range(400):
        predicted, provider = tage.predict(pc)
        if i >= 300 and predicted != outcome:
            mispredicts_late += 1
        tage.update(pc, outcome, provider, predicted)
        outcome = not outcome
    assert mispredicts_late <= 10


def test_boom_predictor_decode_resteer_counted():
    predictor = BoomBranchPredictor()
    predictor.predict_branch(0x2000)  # predicted taken, BTB cold
    assert predictor.decode_resteers == 1


def test_boom_indirect_return_prediction():
    predictor = BoomBranchPredictor()
    predictor.ras.push(0x8888)
    assert predictor.predict_indirect(0x100, is_return=True) == 0x8888
    # non-return falls back to the BTB
    predictor.btb.insert(0x200, 0x9999)
    assert predictor.predict_indirect(0x200) == 0x9999


def test_boom_first_pass_not_taken_chain_mispredicts_once():
    """brmiss_inv on BOOM: one mispredict per branch, then learned."""
    predictor = BoomBranchPredictor()
    pcs = [0x1000 + 12 * i for i in range(64)]
    first_pass = 0
    later_pass = 0
    for pass_index in range(4):
        for pc in pcs:
            prediction = predictor.predict_branch(pc)
            mispredicted = predictor.resolve_branch(pc, False, pc + 8,
                                                    prediction)
            if mispredicted:
                if pass_index == 0:
                    first_pass += 1
                else:
                    later_pass += 1
    assert first_pass == len(pcs)        # weakly-taken init mispredicts
    assert later_pass <= len(pcs) // 8   # learned afterwards


def test_predictor_stats_accuracy():
    predictor = RocketBranchPredictor()
    pc = 0x100
    for _ in range(10):
        prediction = predictor.predict_branch(pc)
        predictor.resolve_branch(pc, True, 0x80, prediction)
    stats = predictor.stats
    assert stats.lookups == 10
    assert 0.0 <= stats.accuracy <= 1.0
    assert stats.mispredicts == stats.direction_mispredicts \
        + stats.target_mispredicts


def test_gshare_uses_global_history():
    from repro.uarch.branch import GsharePredictor

    gshare = GsharePredictor(entries=256, history_bits=8, init=2)
    pc = 0x1000
    # Train a history-dependent pattern: outcome equals the previous
    # outcome's complement (period 2) — gshare separates the contexts.
    outcome = True
    mispredicts_late = 0
    for i in range(400):
        predicted, provider = gshare.predict(pc)
        assert provider == "gshare"
        if i >= 300 and predicted != outcome:
            mispredicts_late += 1
        gshare.update(pc, outcome, provider, predicted)
        outcome = not outcome
    assert mispredicts_late <= 5


def test_gshare_rejects_bad_geometry():
    import pytest

    from repro.uarch.branch import GsharePredictor

    with pytest.raises(ValueError):
        GsharePredictor(entries=300)


def test_bimodal_predictor_wraps_bht():
    from repro.uarch.branch import BimodalPredictor

    bimodal = BimodalPredictor(entries=64, init=2)
    taken, provider = bimodal.predict(0x40)
    assert taken and provider == "bimodal"
    for _ in range(3):
        bimodal.update(0x40, False, provider, taken)
    assert not bimodal.predict(0x40)[0]


def test_direction_predictor_factory():
    import pytest

    from repro.uarch.branch import (BimodalPredictor, GsharePredictor,
                                    TagePredictor,
                                    make_direction_predictor)

    assert isinstance(make_direction_predictor("tage"), TagePredictor)
    assert isinstance(make_direction_predictor("gshare"),
                      GsharePredictor)
    assert isinstance(make_direction_predictor("bimodal"),
                      BimodalPredictor)
    with pytest.raises(ValueError):
        make_direction_predictor("perceptron")


def test_boom_predictor_accepts_direction_kinds():
    from repro.uarch.branch import BoomBranchPredictor

    for kind in ("tage", "gshare", "bimodal"):
        predictor = BoomBranchPredictor(direction=kind)
        prediction = predictor.predict_branch(0x2000)
        predictor.resolve_branch(0x2000, True, 0x3000, prediction)
        assert predictor.stats.lookups == 1
