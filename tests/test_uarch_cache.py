"""Unit tests for caches, MSHRs, and the memory hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cache import (Cache, CacheConfig, DRAM_LATENCY, L1D_16K,
                               L1D_32K, MemorySystem, MSHRFile)


def small_cache(ways: int = 2, sets: int = 4,
                next_latency: int = 10) -> Cache:
    config = CacheConfig("t", ways * sets * 64, ways, 64, hit_latency=1)
    return Cache(config, next_latency=next_latency)


def test_geometry():
    assert L1D_32K.num_sets == 64
    assert L1D_16K.num_sets == 32


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheConfig("bad", 64, 8, 64).num_sets


def test_cold_miss_then_hit():
    cache = small_cache()
    hit, latency = cache.access(0x1000)
    assert not hit and latency > 1
    hit, latency = cache.access(0x1000)
    assert hit and latency == 1


def test_same_block_hits():
    cache = small_cache()
    cache.access(0x1000)
    hit, _ = cache.access(0x103F)  # same 64B block
    assert hit


def test_lru_eviction():
    cache = small_cache(ways=2, sets=1)
    cache.access(0x0)
    cache.access(0x40)
    cache.access(0x0)      # touch 0x0 -> 0x40 becomes LRU
    cache.access(0x80)     # evicts 0x40
    assert cache.lookup(0x0)
    assert not cache.lookup(0x40)


def test_dirty_writeback_counted():
    cache = small_cache(ways=1, sets=1)
    cache.access(0x0, is_store=True)
    cache.access(0x40)     # evicts dirty block
    assert cache.stats.writebacks == 1


def test_flush_invalidates():
    cache = small_cache()
    cache.access(0x1000)
    cache.flush()
    assert not cache.lookup(0x1000)


def test_hierarchy_miss_latency_includes_next_level():
    memory = MemorySystem.build()
    l1d = memory.blocking_l1d()
    _, cold = l1d.access(0x5000, cycle=0)
    assert cold >= memory.l2.config.hit_latency + DRAM_LATENCY
    # L1 evict -> L2 hit path must be cheaper than DRAM
    memory2 = MemorySystem.build()
    l1 = memory2.blocking_l1d()
    l1.access(0x0, cycle=0)
    # Evict by filling the set (8 ways, 64 sets -> stride 64*64)
    for way in range(1, 9):
        l1.access(way * 64 * 64, cycle=0)
    assert not l1.lookup(0x0)
    _, l2_hit = l1.access(0x0, cycle=0)
    assert l2_hit < DRAM_LATENCY


def test_dram_bus_gap_spaces_refills():
    memory = MemorySystem.build(dram_block_gap=16)
    nb = memory.nonblocking_l1d(mshrs=8)
    ready = [nb.access(i * 4096, cycle=0)[1] for i in range(4)]
    # All issued at cycle 0, but DRAM returns them 16 cycles apart.
    deltas = [b - a for a, b in zip(ready, ready[1:])]
    assert all(d >= 16 for d in deltas)


def test_mshr_merge_secondary_miss():
    memory = MemorySystem.build()
    nb = memory.nonblocking_l1d(mshrs=2)
    hit1, ready1, primary1 = nb.access_ex(0x9000, cycle=0)
    hit2, ready2, primary2 = nb.access_ex(0x9008, cycle=1)
    assert not hit1 and primary1
    assert not hit2 and not primary2      # merged into the same MSHR
    assert ready2 == ready1


def test_mshr_file_capacity_and_reap():
    mshrs = MSHRFile(2)
    assert mshrs.allocate(1, ready_cycle=50, cycle=0) is not None
    assert mshrs.allocate(2, ready_cycle=60, cycle=0) is not None
    assert mshrs.allocate(3, ready_cycle=70, cycle=0) is None
    assert mshrs.is_full(10)
    assert not mshrs.is_full(55)          # first refill done, reaped
    assert mshrs.allocate(3, ready_cycle=90, cycle=55) is not None


def test_mshr_busy_and_refill_in_flight():
    mshrs = MSHRFile(4)
    mshrs.allocate(1, ready_cycle=20, cycle=0)
    assert mshrs.busy(10) == 1
    assert mshrs.refill_in_flight(10)
    assert not mshrs.refill_in_flight(25)


def test_nonblocking_hit_path():
    memory = MemorySystem.build()
    nb = memory.nonblocking_l1d(mshrs=2)
    nb.access(0xA000, cycle=0)
    hit, ready, primary = nb.access_ex(0xA000, cycle=200)
    assert hit and not primary
    assert ready == 200 + nb.cache.config.hit_latency


def test_block_address_alignment():
    cache = small_cache()
    assert cache.block_address(0x1234) == 0x1200


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=60))
def test_most_recent_block_always_resident(block_ids):
    """LRU invariant: the last accessed block is always present."""
    cache = small_cache(ways=2, sets=4)
    for block in block_ids:
        cache.access(block * 64)
        assert cache.lookup(block * 64)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                max_size=80))
def test_hits_plus_misses_equals_accesses(block_ids):
    cache = small_cache(ways=4, sets=2)
    for block in block_ids:
        cache.access(block * 64)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses
    assert 0.0 <= stats.miss_rate <= 1.0
