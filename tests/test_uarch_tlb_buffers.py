"""Unit tests for TLBs and ready/valid queues."""

import pytest

from repro.uarch.buffers import ReadyValidQueue
from repro.uarch.tlb import (L2_TLB_HIT_LATENCY, PTW_LATENCY, Tlb,
                             TlbHierarchy)


def test_tlb_miss_then_hit():
    tlb = Tlb(4)
    assert not tlb.access(0x1000)
    assert tlb.access(0x1FFF)     # same 4 KiB page
    assert not tlb.access(0x2000)


def test_tlb_lru_eviction():
    tlb = Tlb(2)
    tlb.access(0x1000)
    tlb.access(0x2000)
    tlb.access(0x1000)            # refresh
    tlb.access(0x3000)            # evicts 0x2000
    assert tlb.access(0x1000)
    assert not tlb.access(0x2000)


def test_tlb_flush():
    tlb = Tlb(4)
    tlb.access(0x1000)
    tlb.flush()
    assert not tlb.access(0x1000)


def test_hierarchy_l2_backstop():
    tlbs = TlbHierarchy(itlb_entries=1, dtlb_entries=1, l2_entries=64)
    tlbs.access_data(0x1000)
    tlbs.access_data(0x2000)      # evicts page 1 from the tiny DTLB
    hit, extra = tlbs.access_data(0x1000)
    assert not hit and extra == L2_TLB_HIT_LATENCY


def test_hierarchy_full_walk_cost():
    tlbs = TlbHierarchy()
    hit, extra = tlbs.access_instruction(0x5000)
    assert not hit and extra == PTW_LATENCY
    hit, extra = tlbs.access_instruction(0x5000)
    assert hit and extra == 0


def test_queue_capacity_and_handshake():
    queue = ReadyValidQueue(2)
    assert queue.producer_ready and not queue.valid
    assert queue.push(1)
    assert queue.push(2)
    assert not queue.push(3)      # full: producer not ready
    assert not queue.producer_ready
    assert queue.valid
    assert queue.pop() == 1
    assert queue.producer_ready


def test_queue_pop_up_to_preserves_order():
    queue = ReadyValidQueue(8)
    for value in range(5):
        queue.push(value)
    assert queue.pop_up_to(3) == [0, 1, 2]
    assert queue.pop_up_to(10) == [3, 4]
    assert not queue.valid


def test_queue_clear_models_flush():
    queue = ReadyValidQueue(4)
    queue.push("a")
    queue.clear()
    assert not queue.valid and queue.occupancy == 0


def test_queue_peek_and_free_slots():
    queue = ReadyValidQueue(3)
    assert queue.peek() is None
    queue.push(7)
    assert queue.peek() == 7
    assert queue.free_slots() == 2


def test_queue_rejects_zero_capacity():
    with pytest.raises(ValueError):
        ReadyValidQueue(0)
