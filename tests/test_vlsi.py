"""Unit tests for the physical-design overhead model (§V-C)."""

import pytest

from repro.cores import (ALL_BOOM_CONFIGS, GIGA_BOOM, LARGE_BOOM,
                         MEDIUM_BOOM, MEGA_BOOM, SMALL_BOOM)
from repro.vlsi import (CLOCK_PERIOD_NS,
                        event_source_groups, floorplan, paper_calibration,
                        single_lane_wire_reduction, structure_for, sweep,
                        tile_area, tile_modules)
from repro.vlsi.flow import (PAPER_AREA_CEILING, PAPER_POWER_CEILING,
                             PAPER_WIRELENGTH_CEILING)


def test_tile_area_grows_with_size():
    areas = [tile_area(config) for config in ALL_BOOM_CONFIGS]
    assert areas == sorted(areas)


def test_tile_modules_cover_event_sources():
    names = {m.name for m in tile_modules(LARGE_BOOM)}
    for group in event_source_groups(LARGE_BOOM):
        assert group.module in names
    assert "csr" in names


def test_floorplan_tiles_the_die_exactly():
    plan = floorplan(LARGE_BOOM)
    placed = sum(p.width * p.height for p in plan.placements.values())
    assert placed == pytest.approx(plan.die_area)
    for placement in plan.placements.values():
        assert 0 <= placement.x <= plan.die_width
        assert 0 <= placement.y <= plan.die_height


def test_csr_file_placed_near_die_center():
    plan = floorplan(LARGE_BOOM)
    x, y = plan.center_of("csr")
    assert abs(x - plan.die_width / 2) < plan.die_width * 0.35
    assert abs(y - plan.die_height / 2) < plan.die_height * 0.35


def test_event_group_lane_counts_follow_config():
    groups = {g.event: g.lanes for g in event_source_groups(LARGE_BOOM)}
    assert groups["fetch_bubbles"] == LARGE_BOOM.decode_width
    assert groups["uops_issued_fp"] == LARGE_BOOM.issue_fp
    assert groups["icache_blocked"] == 1


def test_baseline_structure_is_empty():
    structure = structure_for(LARGE_BOOM, "baseline")
    assert structure.flop_bits == 0
    assert structure.wire_mm == 0.0
    assert structure.csr_extra_delay_ns == 0.0


def test_scalar_uses_most_counter_flops():
    scalar = structure_for(LARGE_BOOM, "scalar")
    adders = structure_for(LARGE_BOOM, "adders")
    distributed = structure_for(LARGE_BOOM, "distributed")
    assert scalar.flop_bits > adders.flop_bits
    assert scalar.flop_bits > distributed.flop_bits


def test_adders_route_fewest_wire_mm():
    scalar = structure_for(LARGE_BOOM, "scalar")
    adders = structure_for(LARGE_BOOM, "adders")
    assert adders.wire_mm < scalar.wire_mm


def test_unknown_architecture_rejected():
    with pytest.raises(ValueError):
        structure_for(LARGE_BOOM, "quantum")


def test_all_configs_pass_200mhz():
    """§V-C: every size × architecture closes timing at 200 MHz."""
    for per_arch in sweep().values():
        for result in per_arch.values():
            assert result.passes_200mhz
            assert result.longest_csr_path_ns < CLOCK_PERIOD_NS


def test_overhead_ceilings_match_paper():
    grid = sweep()
    power = max(r.power_overhead for a in grid.values() for r in a.values())
    area = max(r.area_overhead for a in grid.values() for r in a.values())
    wires = max(r.wirelength_overhead for a in grid.values()
                for r in a.values())
    assert power == pytest.approx(PAPER_POWER_CEILING, rel=1e-6)
    assert area <= PAPER_AREA_CEILING + 1e-9
    assert wires <= PAPER_WIRELENGTH_CEILING + 1e-9


def test_overheads_grow_with_core_size():
    grid = sweep()
    scalar_power = [grid[c.name]["scalar"].power_overhead
                    for c in ALL_BOOM_CONFIGS]
    assert scalar_power == sorted(scalar_power)


def test_fig9b_adders_distributed_crossover():
    """Adders <= distributed at small/medium; distributed wins at the
    mega/giga end (the Fig. 9b scalability story)."""
    grid = sweep()

    def normalized(config, arch):
        per = grid[config.name]
        return per[arch].normalized_csr_path(per["baseline"])

    for config in (SMALL_BOOM, MEDIUM_BOOM):
        assert normalized(config, "adders") \
            <= normalized(config, "distributed") + 1e-9
    for config in (MEGA_BOOM, GIGA_BOOM):
        assert normalized(config, "distributed") \
            < normalized(config, "adders")


def test_adders_delay_grows_with_width():
    small = structure_for(SMALL_BOOM, "adders").csr_extra_delay_ns
    giga = structure_for(GIGA_BOOM, "adders").csr_extra_delay_ns
    assert giga > small


def test_distributed_delay_nearly_flat_across_sizes():
    small = structure_for(SMALL_BOOM, "distributed").csr_extra_delay_ns
    giga = structure_for(GIGA_BOOM, "distributed").csr_extra_delay_ns
    assert giga - small < 0.1


def test_calibration_factors_positive():
    calibration = paper_calibration()
    for value in calibration.values():
        assert value > 0


def test_single_lane_wire_reduction_positive():
    """§V-A: dropping to one monitored fetch lane shortens the longest
    fetch-bubble PMU wire (paper: 11.39%)."""
    reduction = single_lane_wire_reduction(MEGA_BOOM)
    assert 0.03 < reduction < 0.35


def test_monitored_lanes_reduce_structure():
    full = structure_for(LARGE_BOOM, "scalar")
    reduced = structure_for(LARGE_BOOM, "scalar",
                            monitored_lanes={"fetch_bubbles": 1})
    assert reduced.flop_bits < full.flop_bits
    assert reduced.wire_mm < full.wire_mm
