"""Windowed/sampled engine: plan, stitch gate, labels, integrations.

``repro.cores.windowed`` shards a trace into K instruction windows,
simulates them independently with run-and-subtract warmup, and stitches
per-window results into a whole-run ``CoreResult``.  The oracle is a
plain ``run_core`` of the same (workload, config, scale): these tests
pin the equivalence gate across the whole workload registry and every
core config, the per-event-class gate semantics (bit-identical,
retire-edge slack, calibrated tolerance), sampled-mode labeling and
error bars, the cache-key plan folding, and the windowed paths through
``run_core``, the batch engine, and the service job layer.

The whole file honours ``REPRO_TIMING_ENGINE``: the
windowed-equivalence CI job runs it once on the default columnar engine
and once with the object-engine oracle forced.
"""

import copy
import dataclasses

import pytest

from repro.core.tma import TOP_LEVEL
from repro.cores import LARGE_BOOM, MEDIUM_BOOM, ROCKET, SMALL_BOOM
from repro.cores.batch import parse_grid, run_batch
from repro.cores.windowed import (ABS_PER_WINDOW, DEFAULT_WARMUP,
                                  EXACT_EVENTS, GATE_WARMUP, REL_TOL,
                                  RETIRE_EDGE_SLACK, RETIRE_EVENTS,
                                  assert_stitch_equivalent, normalized_warmup,
                                  plan_windows, resolve_windows_env,
                                  run_windowed, run_windowed_points)
from repro.service.job import TMAJob, JobValidationError, outcome_payload
from repro.service.workers import execute_job
from repro.tools import cache as result_cache
from repro.tools.tma_tool import run_core
from repro.workloads import build_trace, workload_names

SCALE = 0.3
CONFIGS = (ROCKET, SMALL_BOOM, MEDIUM_BOOM, LARGE_BOOM)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


def result_digest(result):
    return (
        result.events,
        result.lane_events,
        result.cycles,
        result.instret,
        dataclasses.astuple(result.l1i_stats),
        dataclasses.astuple(result.l1d_stats),
        dataclasses.astuple(result.l2_stats),
        dataclasses.astuple(result.predictor_stats),
        result.extra,
    )


# ----------------------------------------------------------------------
# window planning


def test_exact_plan_tiles_the_trace():
    plan = plan_windows(10_001, 4)
    assert plan.windows == 4
    assert plan.warmup == DEFAULT_WARMUP
    assert not plan.sampled
    assert plan.spans[0][0] == 0
    assert plan.spans[-1][1] == 10_001
    for (_, stop), (start, _) in zip(plan.spans, plan.spans[1:]):
        assert stop == start  # contiguous, no gap or overlap
    assert plan.measured_instructions == 10_001
    assert plan.coverage == 1.0


def test_single_window_needs_no_warmup():
    plan = plan_windows(5_000, 1)
    assert plan.warmup == 0
    assert plan.spans == ((0, 5_000),)


def test_sampled_plan_covers_a_fraction():
    plan = plan_windows(100_000, 4, sampled=True)
    assert plan.sampled
    assert len(plan.spans) == 4
    period = 100_000 // 4
    for i, (start, stop) in enumerate(plan.spans):
        assert start == i * period
        assert stop - start == max(256, period // 10)
    assert 0 < plan.coverage < 0.5


def test_plan_validation():
    with pytest.raises(ValueError):
        plan_windows(0, 4)
    with pytest.raises(ValueError):
        plan_windows(100, 0)
    with pytest.raises(ValueError):
        plan_windows(100, 2, warmup=-1)
    # More windows than instructions degrades to one per instruction.
    assert plan_windows(3, 8).windows == 3


def test_normalized_warmup_is_trace_independent():
    assert normalized_warmup(1, None, False) == 0
    assert normalized_warmup(2, None, False) == DEFAULT_WARMUP
    assert normalized_warmup(1, None, True) == DEFAULT_WARMUP
    assert normalized_warmup(4, 123, False) == 123
    assert normalized_warmup(4, 0, True) == 0


def test_resolve_windows_env(monkeypatch):
    monkeypatch.delenv("REPRO_WINDOWS", raising=False)
    monkeypatch.delenv("REPRO_WINDOW_WARMUP", raising=False)
    assert resolve_windows_env() == (None, None)
    monkeypatch.setenv("REPRO_WINDOWS", "3")
    monkeypatch.setenv("REPRO_WINDOW_WARMUP", "128")
    assert resolve_windows_env() == (3, 128)
    monkeypatch.setenv("REPRO_WINDOWS", "many")
    with pytest.raises(ValueError):
        resolve_windows_env()


# ----------------------------------------------------------------------
# exact-mode equivalence against the run_core oracle


@pytest.mark.parametrize("workload", workload_names())
def test_stitch_matches_oracle_across_registry(workload):
    """Acceptance: every registry workload x every config, gated."""
    for config in CONFIGS:
        oracle = run_core(workload, config, scale=SCALE, use_cache=False)
        stitched = run_windowed(workload, config, windows=4, scale=SCALE,
                                warmup=GATE_WARMUP, use_cache=False,
                                workers=1)
        assert_stitch_equivalent(stitched, oracle, 4)
        assert stitched.sampled is False
        assert stitched.windowed["windows"] <= 4
        assert stitched.windowed["warmup"] == GATE_WARMUP
        assert stitched.windowed["sampled"] is False
        # Warmup instructions are replayed but never counted.
        assert abs(stitched.instret - oracle.instret) <= RETIRE_EDGE_SLACK


def test_both_timing_engines_agree_windowed():
    results = [
        run_windowed("towers", ROCKET, windows=3, scale=SCALE,
                     engine=engine, use_cache=False, workers=1)
        for engine in ("objects", "columnar")
    ]
    assert result_digest(results[0]) == result_digest(results[1])


def test_gate_event_classes():
    oracle = run_core("towers", ROCKET, scale=SCALE, use_cache=False)
    assert_stitch_equivalent(copy.deepcopy(oracle), oracle, 4)

    exact_names = sorted(EXACT_EVENTS & oracle.events.keys())
    assert exact_names, "oracle must exercise at least one exact event"
    off = copy.deepcopy(oracle)
    off.events[exact_names[0]] += 1
    with pytest.raises(AssertionError, match="exact-class"):
        assert_stitch_equivalent(off, oracle, 4)

    # Retire counters tolerate the documented end-of-stream phantom
    # slack, nothing more.
    near = copy.deepcopy(oracle)
    near.instret -= RETIRE_EDGE_SLACK
    assert_stitch_equivalent(near, oracle, 4)
    past = copy.deepcopy(oracle)
    past.instret -= RETIRE_EDGE_SLACK + 1
    with pytest.raises(AssertionError, match="instret"):
        assert_stitch_equivalent(past, oracle, 4)
    for name in sorted(RETIRE_EVENTS & oracle.events.keys()):
        past = copy.deepcopy(oracle)
        past.events[name] += RETIRE_EDGE_SLACK + 1
        with pytest.raises(AssertionError, match=name):
            assert_stitch_equivalent(past, oracle, 4)

    # Cycles sit in the calibrated tolerance class: exactly at the
    # bound passes, past it fails.
    bound = int(max(REL_TOL * oracle.cycles, ABS_PER_WINDOW * 4))
    inside = copy.deepcopy(oracle)
    inside.cycles += bound
    assert_stitch_equivalent(inside, oracle, 4)
    outside = copy.deepcopy(oracle)
    outside.cycles += bound + 1
    with pytest.raises(AssertionError, match="cycles"):
        assert_stitch_equivalent(outside, oracle, 4)


# ----------------------------------------------------------------------
# sampled mode


def test_sampled_is_labeled_and_extrapolated():
    trace_len = len(build_trace("531.deepsjeng_r", scale=SCALE))
    oracle = run_core("531.deepsjeng_r", ROCKET, scale=SCALE,
                      use_cache=False)
    sampled = run_windowed("531.deepsjeng_r", ROCKET, windows=4, scale=SCALE,
                           sampled=True, use_cache=False, workers=1)
    assert sampled.sampled is True
    assert sampled.windowed["sampled"] is True
    assert sampled.windowed["coverage"] < 0.5
    # instret is pinned to the architectural trace length, never
    # extrapolated; cycles are estimates in the oracle's ballpark.
    assert sampled.instret == trace_len
    assert 0.5 * oracle.cycles < sampled.cycles < 2.0 * oracle.cycles
    bars = sampled.windowed["error_bars"]
    assert set(bars) == set(TOP_LEVEL)
    for slot in TOP_LEVEL:
        bar = bars[slot]
        assert set(bar) == {"mean", "stderr", "low", "high"}
        assert bar["low"] <= bar["mean"] <= bar["high"]


def test_exact_mode_is_never_labeled_sampled():
    exact = run_windowed("towers", ROCKET, windows=2, scale=SCALE,
                         use_cache=False, workers=1)
    assert exact.sampled is False
    assert "error_bars" not in exact.windowed


# ----------------------------------------------------------------------
# caching


def test_windowed_cache_keys_never_collide():
    plain = result_cache.cache_key("towers", SCALE, ROCKET)
    keys = {
        plain,
        result_cache.windowed_cache_key("towers", SCALE, ROCKET, 2,
                                        DEFAULT_WARMUP, False),
        result_cache.windowed_cache_key("towers", SCALE, ROCKET, 4,
                                        DEFAULT_WARMUP, False),
        result_cache.windowed_cache_key("towers", SCALE, ROCKET, 4, 512,
                                        False),
        result_cache.windowed_cache_key("towers", SCALE, ROCKET, 4,
                                        DEFAULT_WARMUP, True),
    }
    assert len(keys) == 5


def test_windowed_results_round_trip_the_cache():
    fresh = run_windowed("towers", ROCKET, windows=2, scale=SCALE,
                         sampled=True, workers=1)
    cached = run_windowed("towers", ROCKET, windows=2, scale=SCALE,
                          sampled=True, workers=1)
    assert result_digest(cached) == result_digest(fresh)
    # The sampled label and metadata survive serialization.
    assert cached.sampled is True
    assert cached.windowed["error_bars"] == fresh.windowed["error_bars"]
    # A plain run of the same workload/config is a different entry.
    plain = run_core("towers", ROCKET, scale=SCALE)
    assert plain.windowed is None and plain.sampled is False


# ----------------------------------------------------------------------
# run_core integration and the huge tier


def test_run_core_windows_delegates():
    direct = run_windowed("towers", ROCKET, windows=2, scale=SCALE,
                          use_cache=False, workers=1)
    via_run_core = run_core("towers", ROCKET, scale=SCALE, windows=2,
                            use_cache=False, workers=1)
    assert result_digest(via_run_core) == result_digest(direct)


def test_run_core_honours_window_env(monkeypatch):
    monkeypatch.setenv("REPRO_WINDOWS", "3")
    monkeypatch.setenv("REPRO_WINDOW_WARMUP", "128")
    result = run_core("towers", ROCKET, scale=SCALE, use_cache=False,
                      workers=1)
    assert result.windowed["windows"] == 3
    assert result.windowed["warmup"] == 128


def test_huge_tier_only_runs_windowed():
    assert "huge-walk" in workload_names("huge")
    assert "huge-walk" not in workload_names()
    with pytest.raises(ValueError, match="huge"):
        run_core("huge-walk", ROCKET, scale=0.1, use_cache=False)
    result = run_core("huge-walk", ROCKET, scale=0.1, windows=2,
                      use_cache=False, workers=1)
    assert result.instret == len(build_trace("huge-walk", scale=0.1))


def test_sampled_requires_windows():
    with pytest.raises(ValueError, match="windows"):
        run_core("towers", ROCKET, scale=SCALE, sampled=True,
                 use_cache=False)


def test_progress_ticks_go_to_stderr(capsys):
    run_windowed("towers", ROCKET, windows=2, scale=SCALE, use_cache=False,
                 workers=1, progress=True)
    err = capsys.readouterr().err
    assert "[windowed] window 1/2" in err
    assert "[windowed] window 2/2" in err


# ----------------------------------------------------------------------
# batch engine: windows x grid points


GRID = parse_grid("rocket,small-boom")


def test_batch_windowed_matches_run_windowed():
    batch = run_batch("towers", GRID, scale=SCALE, windows=3,
                      use_cache=False, workers=1)
    assert batch.stats.trace_fetches == 1
    for point in GRID:
        oracle = run_windowed("towers", point.config, windows=3, scale=SCALE,
                              use_cache=False, workers=1)
        assert result_digest(batch.result_for(point.key)) == \
            result_digest(oracle), point.key


def test_batch_windowed_cache_hits_skip_simulation():
    first = run_batch("towers", GRID, scale=SCALE, windows=3, workers=1)
    assert first.stats.executed == len(GRID)
    again = run_batch("towers", GRID, scale=SCALE, windows=3, workers=1)
    assert again.stats.cache_hits == len(GRID)
    assert again.stats.executed == 0
    for point in GRID:
        assert result_digest(again.result_for(point.key)) == \
            result_digest(first.result_for(point.key))
    # A different plan never reuses those entries.
    other = run_batch("towers", GRID, scale=SCALE, windows=4, workers=1)
    assert other.stats.cache_hits == 0


def test_run_windowed_points_fans_out_pairs():
    seen = []
    results = run_windowed_points(
        "towers", GRID, windows=3, scale=SCALE, workers=1,
        note=lambda point, result: seen.append(point.key))
    assert sorted(seen) == sorted(p.key for p in GRID)
    for point in GRID:
        oracle = run_windowed("towers", point.config, windows=3, scale=SCALE,
                              use_cache=False, workers=1)
        assert result_digest(results[point.key]) == result_digest(oracle)


# ----------------------------------------------------------------------
# service job layer


def test_tma_job_window_validation():
    TMAJob(workload="towers", windows=2, warmup=64, sampled=True).validate()
    with pytest.raises(JobValidationError):
        TMAJob(workload="towers", windows=0).validate()
    with pytest.raises(JobValidationError):
        TMAJob(workload="towers", warmup=64).validate()
    with pytest.raises(JobValidationError):
        TMAJob(workload="towers", sampled=True).validate()
    with pytest.raises(JobValidationError):
        TMAJob(workload="towers", windows=2, warmup=-1).validate()
    with pytest.raises(JobValidationError, match="huge"):
        TMAJob(workload="huge-walk").validate()
    TMAJob(workload="huge-walk", windows=4).validate()


def test_tma_job_payload_round_trip():
    job = TMAJob(workload="towers", config="rocket", scale=SCALE,
                 windows=2, warmup=64, sampled=True)
    restored = TMAJob.from_payload(job.to_payload())
    assert restored == job
    assert restored.job_key() == job.job_key()


def test_window_params_fold_into_job_and_cache_keys():
    base = TMAJob(workload="towers", config="rocket", scale=SCALE)
    windowed = dataclasses.replace(base, windows=2)
    sampled = dataclasses.replace(base, windows=2, sampled=True)
    assert len({base.job_key(), windowed.job_key(), sampled.job_key()}) == 3
    assert windowed.cache_key() == result_cache.windowed_cache_key(
        "towers", SCALE, ROCKET, 2, DEFAULT_WARMUP, False)
    assert windowed.cache_key() != base.cache_key()


@pytest.mark.parametrize("sampled", [False, True])
def test_service_executes_windowed_jobs(sampled):
    job = TMAJob(workload="towers", config="rocket", scale=SCALE,
                 windows=2, sampled=sampled, use_cache=False)
    outcome = execute_job(job.runner_spec(), job.workload, job.config)
    assert outcome.status == "ok"
    assert outcome.payload["kind"] == "windowed"
    assert outcome.payload["sampled"] is sampled
    assert outcome.payload["windowed"]["windows"] == 2
    assert ("error_bars" in outcome.payload["windowed"]) is sampled
    assert set(outcome.payload["tma"]["level1"]) == set(TOP_LEVEL)
    summary = outcome_payload(outcome)
    assert summary["sampled"] is sampled
    assert summary["windowed"]["kind"] == "windowed"
