"""Functional verification of the workload suite.

Every kernel is executed and its exit checksum compared against the
Python twin, at a reduced scale (the registry does the comparison and
raises on mismatch) — a broken kernel cannot silently pass.
"""

import pytest

from repro.workloads import (Workload, build_program, build_trace,
                             get_workload, register, workload_names)

SCALE = 0.35


def test_registry_lists_all_categories():
    assert len(workload_names("micro")) == 12   # incl. coremark
    assert len(workload_names("spec")) == 10
    assert len(workload_names("case-study")) == 3
    # >= rather than ==: examples/tests may register extra workloads
    # (e.g. the custom_workload example) within the same process.
    assert len(workload_names()) >= 25


def test_unknown_workload_raises_with_suggestions():
    with pytest.raises(KeyError):
        get_workload("mystery")


def test_duplicate_registration_rejected():
    existing = get_workload("mergesort")
    with pytest.raises(ValueError):
        register(Workload(name="mergesort", category="micro",
                          source_builder=existing.source_builder))


@pytest.mark.parametrize("name", workload_names())
def test_workload_executes_with_expected_checksum(name):
    trace = build_trace(name, scale=SCALE)
    assert len(trace) > 100
    assert trace.halt_reason == "ecall"


def test_programs_are_cached():
    first = build_program("vvadd", scale=SCALE)
    second = build_program("vvadd", scale=SCALE)
    assert first is second


def test_scales_produce_different_sizes():
    small = build_trace("vvadd", scale=0.2)
    large = build_trace("vvadd", scale=0.5)
    assert len(large) > len(small)


def test_coremark_variants_same_instruction_multiset():
    """CS3 precondition: identical instruction counts, only order
    differs in the compute block."""
    base = build_trace("coremark", scale=SCALE)
    sched = build_trace("coremark_sched", scale=SCALE)
    assert len(base) == len(sched)
    assert base.exit_code == sched.exit_code

    def multiset(trace):
        counts = {}
        for inst in trace:
            counts[inst.mnemonic] = counts.get(inst.mnemonic, 0) + 1
        return counts

    assert multiset(base) == multiset(sched)


def test_brmiss_pair_branch_outcomes_flip():
    """CS2 precondition: base chain is all-taken, inverted all
    not-taken (for the chain branches)."""
    base = build_trace("brmiss", scale=0.3)
    inverted = build_trace("brmiss_inv", scale=0.3)
    base_branches = [i for i in base if i.is_branch and i.mnemonic == "blt"]
    inv_branches = [i for i in inverted
                    if i.is_branch and i.mnemonic == "bge"]
    assert base_branches and inv_branches
    assert all(b.taken for b in base_branches)
    # the outer-loop exit is also a bge; the chain itself never takes
    taken = sum(1 for b in inv_branches if b.taken)
    assert taken <= 1


def test_mcf_is_pointer_chase():
    trace = build_trace("505.mcf_r", scale=0.3)
    loads = [i for i in trace if i.is_load]
    distinct_blocks = {i.mem_addr >> 6 for i in loads}
    # A cold chase touches a new block almost every hop.
    assert len(distinct_blocks) > len(loads) * 0.5


def test_deepsjeng_working_set_is_24kib():
    trace = build_trace("531.deepsjeng_r", scale=0.3)
    addresses = {i.mem_addr >> 6 for i in trace if i.is_mem}
    footprint = len(addresses) * 64
    assert 12 * 1024 < footprint <= 26 * 1024


def test_perlbench_code_footprint_exceeds_l1i():
    program = build_program("500.perlbench_r", scale=0.3)
    assert program.code_bytes > 32 * 1024


def test_mm_uses_fp_pipeline():
    from repro.isa import InstrClass

    trace = build_trace("mm", scale=0.5)
    histogram = trace.class_histogram()
    assert histogram.get(InstrClass.FP, 0) > 100
    assert histogram.get(InstrClass.FP_LOAD, 0) > 100


def test_towers_is_call_heavy():
    from repro.isa import InstrClass

    trace = build_trace("towers", scale=0.7)
    histogram = trace.class_histogram()
    assert histogram.get(InstrClass.JUMP, 0) > 50       # calls
    assert histogram.get(InstrClass.JUMP_REG, 0) > 50   # returns


def test_qsort_branches_are_data_dependent():
    trace = build_trace("qsort", scale=SCALE)
    summary = trace.mispredictable_summary()
    taken_rate = summary["taken"] / summary["branches"]
    assert 0.10 < taken_rate < 0.9
