"""Unit + property tests for the deterministic data generators."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.data import (Lcg, doubles_as_dwords, dwords,
                                  ring_permutation)


def test_lcg_deterministic():
    assert Lcg(42).values(10, 100) == Lcg(42).values(10, 100)


def test_lcg_seeds_differ():
    assert Lcg(1).values(10, 1000) != Lcg(2).values(10, 1000)


def test_lcg_below_bound():
    rng = Lcg(7)
    values = rng.values(1000, 17)
    assert all(0 <= v < 17 for v in values)
    # Rough uniformity: every residue appears.
    assert len(set(values)) == 17


def test_permutation_is_permutation():
    perm = Lcg(5).permutation(100)
    assert sorted(perm) == list(range(100))


def test_dwords_rendering():
    text = dwords("arr", [1, 2, 3], per_line=2)
    lines = text.splitlines()
    assert lines[0] == "arr:"
    assert lines[1].strip() == ".dword 1, 2"
    assert lines[2].strip() == ".dword 3"


def test_dwords_empty_emits_placeholder():
    assert ".dword 0" in dwords("empty", [])


def test_doubles_as_dwords_bit_patterns():
    text = doubles_as_dwords("d", [1.0])
    expected = struct.unpack("<Q", struct.pack("<d", 1.0))[0]
    assert str(expected) in text


def test_ring_permutation_single_cycle():
    ring = ring_permutation(64, seed=3)
    visited = set()
    node = 0
    for _ in range(64):
        assert node not in visited
        visited.add(node)
        node = ring[node]
    assert node == 0          # back to the start after N hops
    assert visited == set(range(64))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=300),
       st.integers(min_value=0, max_value=2 ** 31))
def test_property_ring_permutation_full_cycle(count, seed):
    ring = ring_permutation(count, seed=seed)
    node = 0
    for _ in range(count - 1):
        node = ring[node]
        assert node != 0      # must not return early
    assert ring[node] == 0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=1000),
       st.integers(min_value=1, max_value=10 ** 6))
def test_property_lcg_below_always_in_range(count, bound):
    rng = Lcg(count)
    for _ in range(min(count, 50)):
        assert 0 <= rng.below(bound) < bound
